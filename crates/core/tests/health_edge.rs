//! Edge-case tests for [`SensorHealth`]: failed recovery probes,
//! dropout while quarantined, and the exact quarantine/restore
//! transition sequences recorded in the [`ExplanationLog`].

use selfaware::explain::ExplanationLog;
use selfaware::health::{SensorHealth, SensorHealthConfig};
use simkernel::Tick;

fn ramp(t: u64) -> f64 {
    0.5 * t as f64
}

/// Warm a fresh monitor on the ramp, then bias-shift it into
/// quarantine. Returns the tick after the fault window.
fn quarantine_via_bias(h: &mut SensorHealth, log: &mut ExplanationLog, key: &str) -> u64 {
    for t in 0..50 {
        h.observe(key, Some(ramp(t)), Tick(t), log);
    }
    for t in 50..60 {
        h.observe(key, Some(ramp(t) + 5.0), Tick(t), log);
    }
    assert!(h.is_quarantined(key), "bias shift must quarantine");
    60
}

#[test]
fn failed_recovery_probe_resets_the_agreement_streak() {
    let mut h = SensorHealth::default();
    let mut log = ExplanationLog::new(64);
    let t0 = quarantine_via_bias(&mut h, &mut log, "s");

    // Agree for recover_after - 1 ticks — one short of restoration —
    // then disagree once. The probe must start over from zero, so the
    // same near-miss repeated never restores the sensor.
    let recover_after = u64::from(SensorHealthConfig::default().recover_after);
    for round in 0..3 {
        let base = t0 + round * recover_after;
        for i in 0..recover_after - 1 {
            let t = base + i;
            let r = h.observe("s", Some(ramp(t)), Tick(t), &mut log);
            assert!(r.degraded, "still quarantined mid-probe (round {round})");
        }
        let t = base + recover_after - 1;
        let r = h.observe("s", Some(ramp(t) + 50.0), Tick(t), &mut log);
        assert!(r.degraded, "probe failure must not restore (round {round})");
        assert!(r.substituted);
    }
    assert!(h.is_quarantined("s"));
    assert_eq!(h.restore_events(), 0, "no restore may have slipped through");

    // A full uninterrupted agreement window finally restores it.
    let base = t0 + 3 * recover_after;
    for i in 0..recover_after + 1 {
        let t = base + i;
        h.observe("s", Some(ramp(t)), Tick(t), &mut log);
    }
    assert!(!h.is_quarantined("s"));
    assert_eq!(h.restore_events(), 1);
}

#[test]
fn dropout_during_quarantine_resets_the_probe_and_keeps_substituting() {
    let mut h = SensorHealth::default();
    let mut log = ExplanationLog::new(64);
    let t0 = quarantine_via_bias(&mut h, &mut log, "s");

    let recover_after = u64::from(SensorHealthConfig::default().recover_after);
    // Almost recover, then go silent: the dropout must zero the
    // agreement streak and the substitute must keep flowing.
    for i in 0..recover_after - 1 {
        let t = t0 + i;
        h.observe("s", Some(ramp(t)), Tick(t), &mut log);
    }
    let silent_from = t0 + recover_after - 1;
    for i in 0..5 {
        let t = silent_from + i;
        let r = h.observe("s", None, Tick(t), &mut log);
        assert!(r.degraded);
        assert!(r.substituted);
        assert!(r.raw.is_none());
        assert!(r.value.is_finite(), "substitute must always be usable");
    }
    assert!(h.is_quarantined("s"));

    // One tick short of a fresh full window must still not restore...
    let resume = silent_from + 5;
    for i in 0..recover_after - 1 {
        let t = resume + i;
        h.observe("s", Some(ramp(t)), Tick(t), &mut log);
    }
    assert!(
        h.is_quarantined("s"),
        "pre-dropout agreement must not carry over the silence"
    );
    // ...and completing the window does.
    let t = resume + recover_after - 1;
    h.observe("s", Some(ramp(t)), Tick(t), &mut log);
    assert!(!h.is_quarantined("s"));
    assert_eq!(h.restore_events(), 1);
}

#[test]
fn quarantine_restore_requarantine_is_logged_in_exact_order() {
    let mut h = SensorHealth::default();
    let mut log = ExplanationLog::new(64);
    let t0 = quarantine_via_bias(&mut h, &mut log, "s");

    // Recover fully, then hit the sensor again with a second fault.
    let recover_after = u64::from(SensorHealthConfig::default().recover_after);
    let mut t = t0;
    while h.is_quarantined("s") {
        h.observe("s", Some(ramp(t)), Tick(t), &mut log);
        t += 1;
        assert!(t < t0 + 10 * recover_after, "recovery must terminate");
    }
    // Re-warm past min_samples (restore resets the model), then fault.
    let warm_until = t + SensorHealthConfig::default().min_samples + 8;
    while t < warm_until {
        h.observe("s", Some(ramp(t)), Tick(t), &mut log);
        t += 1;
    }
    for _ in 0..10 {
        h.observe("s", Some(ramp(t) + 5.0), Tick(t), &mut log);
        t += 1;
    }
    assert!(h.is_quarantined("s"));
    assert_eq!(h.quarantine_events(), 2);
    assert_eq!(h.restore_events(), 1);

    // The log tells exactly that story, in order, with timestamps
    // strictly increasing.
    let actions: Vec<&str> = log.iter().map(|e| e.action.as_str()).collect();
    assert_eq!(actions, ["quarantine:s", "restore:s", "quarantine:s"]);
    let times: Vec<u64> = log.iter().map(|e| e.at.value()).collect();
    assert!(times.windows(2).all(|w| w[0] < w[1]), "times {times:?}");
    // Each quarantine entry carries the evidence it acted on.
    for e in log.find_by_action("quarantine:s") {
        assert!(
            e.factors.iter().any(|f| f.name == "residual"),
            "quarantine must cite the residual envelope"
        );
    }
}

#[test]
fn dropout_before_warmup_never_quarantines_but_substitutes() {
    // A sensor that goes silent before min_samples readings must be
    // substituted-for without ever being declared faulty (there is no
    // model worth trusting either way yet).
    let mut h = SensorHealth::default();
    let mut log = ExplanationLog::new(64);
    for t in 0..8 {
        h.observe("s", Some(ramp(t)), Tick(t), &mut log);
    }
    for t in 8..40 {
        let r = h.observe("s", None, Tick(t), &mut log);
        assert!(r.substituted);
        assert!(!r.degraded, "cold sensor must not be quarantined");
    }
    assert_eq!(h.quarantine_events(), 0);
    assert_eq!(log.len(), 0);
}

#[test]
fn stuck_reading_never_counts_as_recovery_agreement() {
    // While quarantined, a bit-identical repeated reading must not
    // build the agreement streak even if the true signal happens to
    // cross the frozen value.
    let truth = |t: u64| 20.0 + 6.0 * (t as f64 * 0.05).sin();
    let mut h = SensorHealth::default();
    let mut log = ExplanationLog::new(64);
    for t in 0..60 {
        let x = truth(t) + if t % 2 == 0 { 0.05 } else { -0.05 };
        h.observe("s", Some(x), Tick(t), &mut log);
    }
    // Freeze the reading; the wobbly residual envelope flags it stuck.
    for t in 60..120 {
        h.observe("s", Some(truth(60)), Tick(t), &mut log);
    }
    assert!(h.is_quarantined("s"), "frozen reading must quarantine");
    // 200 more frozen ticks: the signal repeatedly wanders across the
    // frozen value, but identical bits are never health evidence.
    for t in 120..320 {
        h.observe("s", Some(truth(60)), Tick(t), &mut log);
    }
    assert!(h.is_quarantined("s"), "stuck sensor must stay quarantined");
    assert_eq!(h.restore_events(), 0);
}
