//! Overflow-safety regression tests for the reliable comms protocol.
//!
//! `ReliableConfig` values are caller-supplied and unbounded; the
//! retry machinery computes deadlines as `now + backoff`, which
//! overflows `u64` for extreme configurations. Pre-fix, both the
//! `send()` deadline and the `drive_pending()` backoff deadline used
//! unguarded adds — a panic in debug builds and a wrapped (past-due,
//! hot-looping) deadline in release. These tests fail on that code.

use proptest::prelude::*;
use selfaware::comms::{Channel, ChannelOutcome, CommsNetwork, CommsPolicy, ReliableConfig};
use selfaware::explain::ExplanationLog;
use simkernel::Tick;

/// A channel that loses every frame — keeps messages pending forever
/// so the retry/backoff path is exercised at will.
struct BlackHole;

impl Channel for BlackHole {
    fn transmit(&self, _src: usize, _dst: usize, _seq: u64, _now: Tick) -> ChannelOutcome {
        ChannelOutcome::lost()
    }
}

fn net(cfg: ReliableConfig) -> (CommsNetwork<u8>, ExplanationLog) {
    (
        CommsNetwork::new(CommsPolicy::Reliable(cfg)),
        ExplanationLog::new(64),
    )
}

/// Regression: `send()` computed `now + retry_backoff` unguarded, so
/// a huge first-retry delay overflowed as soon as `now > 0`.
#[test]
fn send_with_huge_retry_backoff_does_not_overflow() {
    let cfg = ReliableConfig {
        retry_backoff: u64::MAX,
        ..ReliableConfig::default()
    };
    let (mut n, mut log) = net(cfg);
    n.send(&BlackHole, 0, 1, 7, Tick(10), &mut log);
    assert_eq!(n.unacked(), 1);
    // The saturated deadline means "never retries before timeout":
    // stepping far ahead must expire, not retry.
    let _ = n.step(&BlackHole, Tick(u64::MAX), &mut log);
    assert_eq!(n.stats().retries, 0);
    assert_eq!(n.stats().expired, 1);
}

/// Regression: `drive_pending()` computed `now + backoff` unguarded.
/// With `backoff_max = u64::MAX` the doubled backoff grows until the
/// deadline add overflows on the second retry.
#[test]
fn drive_pending_with_extreme_backoff_does_not_overflow() {
    let x = u64::MAX / 4;
    let cfg = ReliableConfig {
        retry_backoff: x,
        backoff_max: u64::MAX,
        send_timeout: u64::MAX,
        retry_budget: 8,
        ..ReliableConfig::default()
    };
    let (mut n, mut log) = net(cfg);
    n.send(&BlackHole, 0, 1, 7, Tick(0), &mut log);
    // First retry: deadline x is due; new backoff 2x stays in range.
    let _ = n.step(&BlackHole, Tick(x + 1), &mut log);
    assert_eq!(n.stats().retries, 1);
    // Second retry: backoff saturates at 4x ≈ u64::MAX and the
    // deadline add `now + backoff` must saturate too (pre-fix: debug
    // panic / release wrap-around to a past-due deadline).
    let _ = n.step(&BlackHole, Tick(3 * x + 2), &mut log);
    assert_eq!(n.stats().retries, 2);
    assert_eq!(n.unacked(), 1, "saturated deadline keeps it pending");
    // A wrapped deadline would retry again immediately; a saturated
    // one never fires before u64::MAX.
    let _ = n.step(&BlackHole, Tick(3 * x + 3), &mut log);
    assert_eq!(n.stats().retries, 2);
}

/// One value from across the whole u64 range, biased toward the
/// extremes where the arithmetic can overflow.
fn extreme_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        1u64..1000,
        Just(u64::MAX / 4),
        Just(u64::MAX / 2),
        Just(u64::MAX - 1),
        Just(u64::MAX),
        any::<u64>(),
    ]
}

// For *any* `ReliableConfig` — including deliberately absurd
// backoffs, budgets, and timeouts — driving the protocol over a
// schedule of ticks spanning the whole u64 range never panics, and
// the lifetime counters stay consistent.
proptest! {
    #[test]
    fn any_reliable_config_is_overflow_safe(
        retry_backoff in extreme_u64(),
        backoff_max in extreme_u64(),
        send_timeout in extreme_u64(),
        retry_budget in prop_oneof![Just(0u32), 1u32..16, Just(u32::MAX)],
        jumps in proptest::collection::vec(extreme_u64(), 1..8),
    ) {
        let cfg = ReliableConfig {
            retry_backoff,
            backoff_max,
            send_timeout,
            retry_budget,
            ..ReliableConfig::default()
        };
        let (mut n, mut log) = net(cfg);
        n.send(&BlackHole, 0, 1, 42, Tick(0), &mut log);
        let mut now = 0u64;
        for j in jumps {
            now = now.saturating_add(j);
            let delivered = n.step(&BlackHole, Tick(now), &mut log);
            prop_assert!(delivered.is_empty(), "black hole delivers nothing");
        }
        let s = n.stats();
        prop_assert_eq!(s.delivered, 0);
        prop_assert_eq!(s.acked, 0);
        prop_assert!(s.expired <= 1, "one message can expire at most once");
        prop_assert!(u64::from(n.unacked() as u32) + s.expired == 1,
            "the message is either still pending or expired");
        // Every retransmission was handed to the channel.
        prop_assert_eq!(s.sent, 1 + s.retries);
    }
}
