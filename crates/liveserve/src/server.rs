//! The threaded HTTP-ish TCP server (std only, no async runtime).
//!
//! Architecture: one listener thread accepts connections and makes the
//! *admission* decision (shed with `429 Too Many Requests` +
//! `Retry-After` when the governor has engaged shedding or the
//! admission queue is full); a fixed pool of worker threads parses and
//! serves admitted requests, with the *effective* concurrency governed
//! by an atomic cap the governor resizes at run time. All control
//! knobs — concurrency cap, queue cap, per-request deadline, advertised
//! retry delay, shed flag — are atomics written by the governor thread
//! and read on the hot path, so actuation is wait-free.
//!
//! Requests are a single line, `GET /work?ms=<service>&stall=<extra>&
//! panic=<0|1> HTTP/1.0`: the handler sleeps `ms + stall` milliseconds
//! (work is time-shaped, not CPU-shaped, so a small box can host
//! hundreds of in-flight requests) and `panic=1` makes the handler
//! panic — caught per-request, answered `500`, worker survives. A
//! request older than the governed deadline when a worker picks it up
//! is answered `503` immediately (fail fast beats serving dead work).
//!
//! Shutdown is deadlock-proof by construction: every blocking wait has
//! a timeout (queue condvar, socket reads/writes, non-blocking
//! accept), and [`ServerHandle::shutdown`] joins every spawned thread
//! through a watchdog with a hard deadline, reporting
//! `clean_shutdown = false` instead of hanging if any thread fails to
//! exit — the F11 harness asserts on exactly this.

use std::collections::VecDeque;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server's limits are set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitPolicy {
    /// Limits governed at run time by the supervised autoscaler
    /// (see [`crate::governor::Governor`]).
    Governed,
    /// Classic fixed provisioning: concurrency and queue caps never
    /// move, no shedding, no governed deadline tightening.
    Fixed,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads spawned (upper bound of the concurrency cap).
    pub max_workers: usize,
    /// Initial / maximum admission-queue length.
    pub queue_cap: usize,
    /// Per-request deadline (queue wait + service) in milliseconds.
    pub deadline_ms: u64,
    /// Fixed or governed limits.
    pub policy: LimitPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_workers: 8,
            queue_cap: 64,
            deadline_ms: 250,
            policy: LimitPolicy::Governed,
        }
    }
}

/// An admitted connection waiting for a worker.
struct Job {
    stream: TcpStream,
    arrived: Instant,
}

/// State shared between listener, workers and governor.
pub(crate) struct Shared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    running: AtomicBool,
    // Governed knobs (written by the governor, read on the hot path).
    pub(crate) shedding: AtomicBool,
    pub(crate) concurrency_cap: AtomicUsize,
    pub(crate) queue_cap: AtomicUsize,
    pub(crate) deadline_ms: AtomicU64,
    pub(crate) retry_after_ms: AtomicU64,
    // Live sensing for the governor (windowed: read-and-reset).
    pub(crate) window_arrivals: AtomicU64,
    pub(crate) window_completed: AtomicU64,
    pub(crate) window_violations: AtomicU64,
    pub(crate) window_service_us: AtomicU64,
    pub(crate) active: AtomicUsize,
    // Run counters.
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    panicked: AtomicU64,
    io_errors: AtomicU64,
}

impl Shared {
    pub(crate) fn queue_len(&self) -> usize {
        lock(&self.queue).len()
    }

    /// Wakes all workers (used by the governor after raising the cap).
    pub(crate) fn poke(&self) {
        let _q = lock(&self.queue);
        self.job_ready.notify_all();
    }
}

/// Mutex lock that survives a poisoned mutex (handler panics are
/// caught before they can poison, but a worker aborting mid-update
/// must not deadlock the rest of the server).
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Final server statistics, returned by [`ServerHandle::shutdown`].
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ServerReport {
    /// Connections admitted to the queue.
    pub accepted: u64,
    /// Requests answered `200`.
    pub served: u64,
    /// Connections answered `429` at admission.
    pub shed: u64,
    /// Requests answered `503` (deadline exceeded before service).
    pub timed_out: u64,
    /// Handler panics caught and answered `500`.
    pub panicked: u64,
    /// Connections lost to socket errors (client drops, timeouts).
    pub io_errors: u64,
    /// Threads spawned by [`Server::spawn`].
    pub threads_spawned: usize,
    /// Threads that exited and were joined by shutdown.
    pub threads_joined: usize,
    /// True when every thread joined within the shutdown deadline —
    /// the harness's no-deadlock / no-leak assertion.
    pub clean_shutdown: bool,
}

/// A running server: address plus the handles shutdown needs.
pub struct ServerHandle {
    /// Bound address (ephemeral port on 127.0.0.1).
    pub addr: SocketAddr,
    pub(crate) shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// The server factory.
pub struct Server;

impl Server {
    /// Binds 127.0.0.1 on an ephemeral port and spawns the listener
    /// and worker threads.
    ///
    /// # Errors
    /// Returns any socket-bind error.
    pub fn spawn(cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let initial_cap = match cfg.policy {
            LimitPolicy::Governed => 1, // governor scales it up
            LimitPolicy::Fixed => cfg.max_workers,
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            running: AtomicBool::new(true),
            shedding: AtomicBool::new(false),
            concurrency_cap: AtomicUsize::new(initial_cap),
            queue_cap: AtomicUsize::new(cfg.queue_cap),
            deadline_ms: AtomicU64::new(cfg.deadline_ms),
            retry_after_ms: AtomicU64::new(100),
            window_arrivals: AtomicU64::new(0),
            window_completed: AtomicU64::new(0),
            window_violations: AtomicU64::new(0),
            window_service_us: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
        });

        let mut threads = Vec::with_capacity(cfg.max_workers + 1);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("live-listen".into())
                    .spawn(move || listen_loop(&listener, &shared))?,
            );
        }
        for w in 0..cfg.max_workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("live-worker-{w}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

impl ServerHandle {
    /// Shared control/sensing surface for the governor.
    pub(crate) fn controls(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Snapshot of the run counters (shutdown fills in the thread
    /// accounting).
    #[must_use]
    pub fn report(&self) -> ServerReport {
        let s = &self.shared;
        ServerReport {
            accepted: s.accepted.load(Ordering::Relaxed),
            served: s.served.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            timed_out: s.timed_out.load(Ordering::Relaxed),
            panicked: s.panicked.load(Ordering::Relaxed),
            io_errors: s.io_errors.load(Ordering::Relaxed),
            threads_spawned: self.threads.len(),
            threads_joined: 0,
            clean_shutdown: false,
        }
    }

    /// Stops the server and joins every thread, with a hard deadline:
    /// if any thread fails to exit within `grace`, the report comes
    /// back with `clean_shutdown = false` instead of hanging.
    #[must_use]
    pub fn shutdown(self, grace: Duration) -> ServerReport {
        let mut report = self.report();
        self.shared.running.store(false, Ordering::SeqCst);
        self.job_wakeall();

        // Joining can block forever if a thread leaked; do the joins
        // on a reaper thread and bound the wait with a channel.
        let spawned = self.threads.len();
        let (tx, rx) = mpsc::channel();
        let reaper = std::thread::Builder::new()
            .name("live-reaper".into())
            .spawn(move || {
                let mut joined = 0usize;
                for t in self.threads {
                    if t.join().is_ok() {
                        joined += 1;
                    }
                }
                let _ = tx.send(joined);
            });
        let joined = match reaper {
            Ok(h) => match rx.recv_timeout(grace) {
                Ok(j) => {
                    let _ = h.join();
                    j
                }
                Err(_) => 0, // threads stuck: report dirty, don't hang
            },
            Err(_) => 0,
        };
        report.threads_spawned = spawned;
        report.threads_joined = joined;
        report.clean_shutdown = joined == spawned;
        report
    }

    fn job_wakeall(&self) {
        let _q = lock(&self.shared.queue);
        self.shared.job_ready.notify_all();
    }
}

const ACCEPT_IDLE: Duration = Duration::from_millis(2);
const IO_TIMEOUT: Duration = Duration::from_millis(200);
const WAIT_SLICE: Duration = Duration::from_millis(25);

fn listen_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => admit(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_IDLE);
            }
            Err(_) => {
                shared.io_errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(ACCEPT_IDLE);
            }
        }
    }
}

/// Admission: shed (self-expression: tell the client *when* to come
/// back) or enqueue for a worker.
fn admit(mut stream: TcpStream, shared: &Arc<Shared>) {
    shared.window_arrivals.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_nodelay(true);

    let queue_cap = shared.queue_cap.load(Ordering::Relaxed);
    let shed = shared.shedding.load(Ordering::Relaxed) || shared.queue_len() >= queue_cap;
    if shed {
        shared.shed.fetch_add(1, Ordering::Relaxed);
        let retry_ms = shared.retry_after_ms.load(Ordering::Relaxed);
        let retry_s = retry_ms.div_ceil(1000).max(1);
        let _ = stream.write_all(
            format!(
                "HTTP/1.0 429 Too Many Requests\r\nRetry-After: {retry_s}\r\nRetry-After-Ms: {retry_ms}\r\nContent-Length: 0\r\n\r\n"
            )
            .as_bytes(),
        );
        return;
    }
    shared.accepted.fetch_add(1, Ordering::Relaxed);
    let mut q = lock(&shared.queue);
    q.push_back(Job {
        stream,
        arrived: Instant::now(),
    });
    drop(q);
    shared.job_ready.notify_one();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Take a job only while under the (dynamic) concurrency cap.
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                let running = shared.running.load(Ordering::SeqCst);
                let cap = shared.concurrency_cap.load(Ordering::Relaxed);
                let may_run = shared.active.load(Ordering::Relaxed) < cap;
                if let Some(job) = (may_run || !running).then(|| q.pop_front()).flatten() {
                    shared.active.fetch_add(1, Ordering::Relaxed);
                    break Some(job);
                }
                if !running {
                    break None;
                }
                let (guard, _) = shared
                    .job_ready
                    .wait_timeout(q, WAIT_SLICE)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                q = guard;
            }
        };
        let Some(job) = job else { return };
        serve(job, shared);
        shared.active.fetch_sub(1, Ordering::Relaxed);
        // A finished slot may unblock a capped peer.
        shared.job_ready.notify_one();
    }
}

/// Parsed request parameters.
struct WorkSpec {
    service_ms: u64,
    stall_ms: u64,
    panic: bool,
}

fn parse_request(line: &str) -> WorkSpec {
    let mut spec = WorkSpec {
        service_ms: 1,
        stall_ms: 0,
        panic: false,
    };
    let Some(q) = line.split_whitespace().nth(1) else {
        return spec;
    };
    let Some((_, params)) = q.split_once('?') else {
        return spec;
    };
    for kv in params.split('&') {
        let Some((k, v)) = kv.split_once('=') else {
            continue;
        };
        match k {
            "ms" => spec.service_ms = v.parse().unwrap_or(1),
            "stall" => spec.stall_ms = v.parse().unwrap_or(0),
            "panic" => spec.panic = v == "1",
            _ => {}
        }
    }
    spec
}

fn serve(mut job: Job, shared: &Arc<Shared>) {
    // Read the request line (bounded read with timeout already set).
    let mut buf = [0u8; 512];
    let mut line = String::new();
    loop {
        match job.stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                line.push_str(&String::from_utf8_lossy(&buf[..n]));
                if line.contains("\r\n\r\n") || line.contains('\n') || line.len() > 4096 {
                    break;
                }
            }
            Err(_) => {
                shared.io_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
    if line.is_empty() {
        shared.io_errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let spec = parse_request(&line);

    // Governed deadline: dead-on-arrival work is failed fast.
    let deadline = Duration::from_millis(shared.deadline_ms.load(Ordering::Relaxed));
    if job.arrived.elapsed() > deadline {
        shared.timed_out.fetch_add(1, Ordering::Relaxed);
        let _ = job
            .stream
            .write_all(b"HTTP/1.0 503 Service Unavailable\r\nContent-Length: 8\r\n\r\ndeadline");
        return;
    }

    // The handler proper: time-shaped work; a chaos panic is caught
    // per-request so the worker (and the pool accounting) survives.
    let started = Instant::now();
    let work = Duration::from_millis(spec.service_ms + spec.stall_ms);
    #[allow(clippy::panic)] // deliberate fault injection: the whole point
    // is proving the pool contains a panicking handler.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        std::thread::sleep(work);
        if spec.panic {
            std::panic::panic_any("chaos: injected handler panic");
        }
    }));
    let service_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    shared
        .window_service_us
        .fetch_add(service_us, Ordering::Relaxed);

    match outcome {
        Ok(()) => {
            let total = job.arrived.elapsed();
            shared.window_completed.fetch_add(1, Ordering::Relaxed);
            if total > deadline {
                shared.window_violations.fetch_add(1, Ordering::Relaxed);
            }
            let body = format!("ok {}us", total.as_micros());
            let ok = job
                .stream
                .write_all(
                    format!(
                        "HTTP/1.0 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                )
                .is_ok();
            if ok {
                shared.served.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(_) => {
            shared.panicked.fetch_add(1, Ordering::Relaxed);
            let _ = job
                .stream
                .write_all(b"HTTP/1.0 500 Internal Server Error\r\nContent-Length: 5\r\n\r\npanic");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(2))).ok();
        write!(s, "GET {path} HTTP/1.0\r\n\r\n").expect("write");
        let mut out = String::new();
        s.read_to_string(&mut out).ok();
        out
    }

    #[test]
    fn serves_and_shuts_down_cleanly() {
        let handle = Server::spawn(&ServerConfig {
            max_workers: 2,
            policy: LimitPolicy::Fixed,
            ..ServerConfig::default()
        })
        .expect("spawn");
        let addr = handle.addr;
        for _ in 0..5 {
            let resp = get(addr, "/work?ms=2");
            assert!(resp.starts_with("HTTP/1.0 200"), "{resp}");
        }
        let report = handle.shutdown(Duration::from_secs(5));
        assert!(report.clean_shutdown, "{report:?}");
        assert_eq!(report.threads_joined, report.threads_spawned);
        assert_eq!(report.served, 5);
    }

    #[test]
    fn sheds_when_flag_engaged() {
        let handle = Server::spawn(&ServerConfig::default()).expect("spawn");
        handle.shared.shedding.store(true, Ordering::SeqCst);
        let resp = get(handle.addr, "/work?ms=1");
        assert!(resp.starts_with("HTTP/1.0 429"), "{resp}");
        assert!(resp.contains("Retry-After-Ms:"), "{resp}");
        let report = handle.shutdown(Duration::from_secs(5));
        assert!(report.clean_shutdown);
        assert_eq!(report.shed, 1);
    }

    #[test]
    fn handler_panic_is_contained() {
        let handle = Server::spawn(&ServerConfig {
            max_workers: 1,
            policy: LimitPolicy::Fixed,
            ..ServerConfig::default()
        })
        .expect("spawn");
        let resp = get(handle.addr, "/work?ms=1&panic=1");
        assert!(resp.starts_with("HTTP/1.0 500"), "{resp}");
        // The single worker must still be alive to serve this.
        let resp = get(handle.addr, "/work?ms=1");
        assert!(resp.starts_with("HTTP/1.0 200"), "{resp}");
        let report = handle.shutdown(Duration::from_secs(5));
        assert!(report.clean_shutdown, "{report:?}");
        assert_eq!(report.panicked, 1);
    }

    #[test]
    fn parse_request_extracts_params() {
        let s = parse_request("GET /work?ms=12&stall=5&panic=1 HTTP/1.0");
        assert_eq!(s.service_ms, 12);
        assert_eq!(s.stall_ms, 5);
        assert!(s.panic);
        let s = parse_request("GET / HTTP/1.0");
        assert_eq!(s.service_ms, 1);
        assert!(!s.panic);
    }
}
