//! Quick-start demo: run the standard chaos campaign against the
//! supervised live server and print what the governor did.
//!
//! ```text
//! cargo run --release --bin liveserve_demo [seed] [ticks]
//! ```
//!
//! Ticks are 10 ms governor quanta (default 500 = 5 s of traffic).

use liveserve::{run_arm, Arm, ChaosPlan};
use simkernel::SeedTree;

fn main() {
    liveserve::install_quiet_panic_hook();
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let ticks: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);

    let plan = ChaosPlan::standard(ticks);
    println!(
        "liveserve demo: seed={seed} ticks={ticks} (~{}s), base {} rps, burst x{}",
        ticks * plan.quantum_ms / 1000,
        plan.base_rps,
        plan.burst_mult
    );

    let seeds = SeedTree::new(seed);
    for arm in [Arm::Supervised, Arm::Naive] {
        match run_arm(arm, &plan, &seeds) {
            Ok(r) => {
                println!("\n== {} ==", arm.label());
                println!(
                    "  goodput {:.1} ok/s | on-time {}/{} | p50 {:.0}ms p99 {:.0}ms | err {:.1}%",
                    r.load.goodput(),
                    r.load.on_time,
                    r.load.offered,
                    r.load.latency_percentile(0.50),
                    r.load.latency_percentile(0.99),
                    r.load.error_rate() * 100.0
                );
                println!(
                    "  server: served {} shed {} timed-out {} panics {} | clean shutdown: {} ({}/{} threads joined)",
                    r.server.served,
                    r.server.shed,
                    r.server.timed_out,
                    r.server.panicked,
                    r.server.clean_shutdown,
                    r.server.threads_joined,
                    r.server.threads_spawned
                );
                if arm == Arm::Supervised {
                    println!(
                        "  supervision: warns {} rollbacks {} fallbacks {} repromotions {}",
                        r.supervision.warns,
                        r.supervision.rollbacks,
                        r.supervision.fallbacks,
                        r.supervision.repromotions
                    );
                    for t in &r.transitions {
                        println!("  t={:>5} {}", t.tick, t.event);
                    }
                }
            }
            Err(e) => {
                eprintln!("{} arm failed: {e}", arm.label());
                std::process::exit(1);
            }
        }
    }
}
