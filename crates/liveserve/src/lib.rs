//! Live-traffic mode: the self-aware control plane on wall-clock time.
//!
//! Every other crate in this workspace exercises the paper's
//! self-awareness ladder inside a simulated clock. This crate is the
//! existence proof that the *same* machinery — the supervised
//! autoscaling policy ([`cloudsim::autoscale::AutoscaleCore`]), the
//! watchdog ladder (`selfaware::supervision`), the slope-tilted
//! hysteresis ([`selfaware::pressure`]) and the clock-agnostic control
//! loop ([`selfaware::runtime`]) — governs a real threaded TCP server
//! under live traffic, with nothing about the policies rewritten:
//! only the [`simkernel::ClockSource`] changes.
//!
//! Layout:
//!
//! * [`server`] — std-only threaded HTTP-ish server with governed
//!   admission (429 + `Retry-After`), bounded queueing, a dynamic
//!   concurrency cap, per-request deadlines, panic containment and
//!   deadlock-proof shutdown accounting.
//! * [`governor`] — the wall-clock [`selfaware::runtime::ControlLoop`]
//!   that senses the server and actuates its knobs each quantum.
//! * [`chaos`] — seed-deterministic chaos plans: flash crowds, slow
//!   handlers, connection drops, handler panics, model poisoning.
//! * [`load`] — the open-loop, `Retry-After`-honouring load generator.
//! * [`scenario`] — one-call supervised/naive experiment arms for the
//!   F11 harness.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::panic)]
#![warn(missing_docs)]

pub mod chaos;
pub mod governor;
pub mod load;
pub mod scenario;
pub mod server;

pub use chaos::{ChaosPlan, RequestSpec};

/// Payload prefix of chaos-injected handler panics (see [`server`]).
pub const CHAOS_PANIC_TAG: &str = "chaos:";

/// Installs a process-wide panic hook that silences chaos-injected
/// handler panics (they are caught and answered `500`; their
/// backtraces would otherwise drown the harness output) while
/// delegating every other panic to the previous hook.
///
/// Idempotent in effect: chaining twice still prints real panics once.
pub fn install_quiet_panic_hook() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let is_chaos = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.starts_with(CHAOS_PANIC_TAG))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with(CHAOS_PANIC_TAG));
        if !is_chaos {
            previous(info);
        }
    }));
}
pub use governor::{Governor, GovernorConfig, Transition};
pub use load::{run_load, LoadOptions, LoadReport, Status};
pub use scenario::{run_arm, Arm, ArmResult};
pub use server::{LimitPolicy, Server, ServerConfig, ServerHandle, ServerReport};
