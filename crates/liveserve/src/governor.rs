//! The live governor: the supervised autoscaling policy driving a real
//! thread pool on wall-clock time.
//!
//! [`Governor`] implements [`selfaware::runtime::ControlLoop`] and is
//! driven by [`selfaware::runtime::drive`] over a
//! [`simkernel::WallClock`], so the *same* sense → decide loop shape
//! (and the same `SAS_OBS` phase spans) that runs the simulated
//! substrates runs here against live TCP traffic. Each quantum it:
//!
//! 1. **senses** the server's windowed counters (arrivals, completions,
//!    SLA violations, summed service time) plus instantaneous queue
//!    depth and in-flight count;
//! 2. feeds them to an [`AutoscaleCore`] — the identical supervised
//!    Holt-forecast policy extracted from `cloudsim` — with
//!    `mean_cap = 1.0` (one handler thread retires one busy-quantum of
//!    work per quantum), and writes the resulting concurrency cap,
//!    queue cap and deadline back to the server's atomics;
//! 3. runs the believed queue depth through a slope-tilted
//!    [`HysteresisGate`] to engage/release **load shedding**, and
//!    advertises a drain-time-derived `Retry-After` — the server's
//!    self-expression of its believed state to clients.
//!
//! When the supervisor benches the arrival model (NaN poison, weight
//! scramble — injected by the chaos harness), the policy falls back to
//! reactive provisioning on raw arrivals; the governor records the
//! control-source flip as a `live:fallback` / `live:repromote`
//! transition, alongside `live:shed` / `live:recover`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cloudsim::autoscale::AutoscaleCore;
use selfaware::explain::{Explanation, ExplanationLog};
use selfaware::pressure::{HysteresisGate, HysteresisGateConfig};
use selfaware::runtime::{drive, ControlLoop};
use selfaware::supervision::ControlSource;
use simkernel::{Tick, WallClock};
use workloads::faults::ModelCorruptionKind;

use crate::server::{ServerHandle, Shared};

/// Governor tuning. Defaults are sized for the F11 scenario: 10 ms
/// quanta, ~1–10 ms handler service times, 300 ms SLA.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Wall-clock quantum of one control tick.
    pub quantum: Duration,
    /// Smallest concurrency cap the governor may set.
    pub min_workers: usize,
    /// Largest concurrency cap (should match the spawned pool).
    pub max_workers: usize,
    /// Queue cap is `concurrency cap × this factor`, clamped below.
    pub queue_factor: usize,
    /// Hard ceiling on the governed queue cap.
    pub queue_cap_max: usize,
    /// Shed gate engage threshold (believed queue depth).
    pub shed_engage: f64,
    /// Shed gate release threshold.
    pub shed_release: f64,
    /// Baseline per-request deadline; halved while shedding so queued
    /// work that can no longer meet the SLA is failed fast.
    pub base_deadline_ms: u64,
    /// Chaos injection: corrupt the arrival model at this tick.
    pub poison_at: Option<(u64, ModelCorruptionKind)>,
    /// When set, the loop stops at the end of the tick in which the
    /// flag becomes true (scenario: "load generator finished").
    pub stop_flag: Option<Arc<AtomicBool>>,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            quantum: Duration::from_millis(10),
            min_workers: 1,
            max_workers: 8,
            queue_factor: 6,
            queue_cap_max: 64,
            shed_engage: 24.0,
            shed_release: 8.0,
            base_deadline_ms: 250,
            poison_at: None,
            stop_flag: None,
        }
    }
}

/// One recorded governor state transition (for traces and the chaos
/// harness's shed/recover assertions).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Transition {
    /// Wall-clock tick (quantum index) of the transition.
    pub tick: u64,
    /// Event name: `live:shed`, `live:recover`, `live:fallback`,
    /// `live:repromote`, `live:poison`.
    pub event: String,
}

/// What one sensing pass reads off the server.
#[derive(Debug, Clone, Copy)]
pub struct SenseFrame {
    arrivals: u64,
    completed: u64,
    violations: u64,
    service_us: u64,
    queue_len: usize,
    active: usize,
}

/// The wall-clock control loop governing a [`ServerHandle`].
pub struct Governor {
    shared: Arc<Shared>,
    cfg: GovernorConfig,
    core: AutoscaleCore,
    gate: HysteresisGate,
    log: ExplanationLog,
    transitions: Vec<Transition>,
    last_cap: usize,
    /// (tick, cap, queue_len, shedding) samples, one per quantum.
    trace: Vec<(u64, usize, usize, bool)>,
}

impl Governor {
    /// Builds a supervised governor attached to `handle`.
    #[must_use]
    pub fn new(handle: &ServerHandle, cfg: GovernorConfig) -> Self {
        let gate = HysteresisGate::new(HysteresisGateConfig {
            engage: cfg.shed_engage,
            release: cfg.shed_release,
            slope_gain: 2.0,
            slope_alpha: 0.3,
            max_tilt: (cfg.shed_engage - cfg.shed_release) * 0.45,
        });
        Self {
            shared: handle.controls(),
            core: AutoscaleCore::new("live-arrivals").supervised(),
            gate,
            log: ExplanationLog::new(1024),
            transitions: Vec::new(),
            last_cap: cfg.min_workers,
            trace: Vec::new(),
            cfg,
        }
    }

    /// Runs the loop on the calling thread until `ticks` quanta of
    /// wall time have elapsed (must run on the scenario thread so the
    /// `SAS_OBS` phase spans land in the thread-local sink).
    pub fn run(&mut self, ticks: u64) {
        let mut clock = WallClock::new(self.cfg.quantum);
        drive(&mut clock, self, Tick(ticks));
    }

    /// Recorded transitions, in order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Per-quantum (tick, cap, queue_len, shedding) samples.
    #[must_use]
    pub fn trace(&self) -> &[(u64, usize, usize, bool)] {
        &self.trace
    }

    /// The governor's explanation log.
    #[must_use]
    pub fn explanations(&self) -> &ExplanationLog {
        &self.log
    }

    /// Watchdog counters from the supervised arrival model.
    #[must_use]
    pub fn supervision_stats(&self) -> selfaware::supervision::SupervisionStats {
        self.core.supervision_stats().unwrap_or_default()
    }

    fn record_transition(&mut self, tick: u64, event: &str) {
        self.transitions.push(Transition {
            tick,
            event: event.to_string(),
        });
    }
}

impl ControlLoop for Governor {
    type Sensed = SenseFrame;

    fn sense(&mut self, _now: Tick) -> SenseFrame {
        let s = &self.shared;
        SenseFrame {
            arrivals: s.window_arrivals.swap(0, Ordering::Relaxed),
            completed: s.window_completed.swap(0, Ordering::Relaxed),
            violations: s.window_violations.swap(0, Ordering::Relaxed),
            service_us: s.window_service_us.swap(0, Ordering::Relaxed),
            queue_len: s.queue_len(),
            active: s.active.load(Ordering::Relaxed),
        }
    }

    #[allow(clippy::cast_precision_loss)]
    fn step(&mut self, now: Tick, frame: SenseFrame) {
        let t = now.value();
        let quantum_us = self.cfg.quantum.as_micros().max(1) as f64;

        // Chaos: corrupt the arrival model at the scheduled tick; the
        // supervisor's watchdog must catch it and fall back.
        if let Some((at, kind)) = self.cfg.poison_at {
            if t == at {
                self.core.inject_model_corruption(kind, now);
                self.record_transition(t, "live:poison");
            }
        }

        // Learn per-request work (in worker-quanta) and SLA outcomes.
        if frame.completed > 0 {
            let mean_quanta = frame.service_us as f64 / frame.completed as f64 / quantum_us;
            for i in 0..frame.completed {
                self.core.observe_work(mean_quanta);
                self.core.observe_outcome(i < frame.violations);
            }
        }

        let source_before = self.core.control_source();

        // Size the pool: arrivals per quantum × mean work quanta ×
        // safety, one slot retiring one busy-quantum per quantum.
        let cap = self.core.desired_pool(
            frame.arrivals as f64,
            now,
            1.0,
            self.cfg.min_workers,
            self.cfg.max_workers,
        );
        self.shared.concurrency_cap.store(cap, Ordering::Relaxed);
        let queue_cap = (cap * self.cfg.queue_factor).clamp(8, self.cfg.queue_cap_max);
        self.shared.queue_cap.store(queue_cap, Ordering::Relaxed);
        if cap > self.last_cap {
            // Newly opened slots: wake capped workers immediately.
            self.shared.poke();
        }
        self.last_cap = cap;

        // Control-source flips (watchdog fallback / re-promotion).
        let source_after = self.core.control_source();
        if source_before != source_after {
            let event = match source_after {
                Some(ControlSource::Baseline) => "live:fallback",
                _ => "live:repromote",
            };
            self.record_transition(t, event);
            self.log.record_with(|| {
                Explanation::new(now, event)
                    .because("tick", t as f64)
                    .because("cap", cap as f64)
            });
        }

        // Backpressure: slope-tilted hysteresis on believed queue
        // depth; advertise estimated drain time as Retry-After.
        let backlog = frame.queue_len as f64;
        let was_shedding = self.gate.engaged();
        let shed = self.gate.observe(backlog);
        self.shared.shedding.store(shed, Ordering::Relaxed);
        let mean_work = self.core.mean_work(1.0).max(0.05);
        let drain_ms =
            (backlog * mean_work * quantum_us / 1000.0 / cap.max(1) as f64).clamp(50.0, 2000.0);
        self.shared
            .retry_after_ms
            .store(drain_ms as u64, Ordering::Relaxed);
        let deadline = if shed {
            self.cfg.base_deadline_ms / 2
        } else {
            self.cfg.base_deadline_ms
        };
        self.shared.deadline_ms.store(deadline, Ordering::Relaxed);

        if shed != was_shedding {
            let event = if shed { "live:shed" } else { "live:recover" };
            self.record_transition(t, event);
            self.log.record_with(|| {
                Explanation::new(now, event)
                    .because("queue", backlog)
                    .because("queue_slope", self.gate.slope())
                    .because("cap", cap as f64)
                    .because("retry_after_ms", drain_ms)
            });
        }

        self.trace.push((t, cap, frame.queue_len, shed));
        let _ = frame.active;
    }

    fn keep_running(&mut self, _next: Tick) -> bool {
        !self
            .cfg
            .stop_flag
            .as_ref()
            .is_some_and(|f| f.load(Ordering::SeqCst))
    }
}
