//! Deterministic-seeded chaos: the request schedule *is* the fault
//! plan.
//!
//! Live-traffic chaos cannot be replayed tick-for-tick the way the
//! simulators are (wall time jitters), but it can be made
//! seed-deterministic at the *plan* level: every arrival instant,
//! service time, stall, injected panic, dropped connection and
//! model-poisoning tick is drawn up front from a [`SeedTree`] into a
//! [`RequestSpec`] schedule. Two runs with the same seed replay the
//! same offered load and the same faults; only scheduler noise
//! differs, which is exactly the noise the F11 replications average
//! over.
//!
//! The fault vocabulary deliberately reuses the workspace's existing
//! kinds: handler stalls are the live analogue of
//! `SensorFaultKind::Stuck` windows, connection drops of lossy links,
//! and the controller poison event reuses
//! [`workloads::faults::ModelCorruptionKind`] verbatim — the same
//! corruption the F6/F10 campaigns inject into simulated controllers.

use rand::Rng as _;
use simkernel::SeedTree;
use workloads::faults::ModelCorruptionKind;

/// A half-open window `[start, start+len)` in governor ticks.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Window {
    /// First tick of the window.
    pub start: u64,
    /// Length in ticks.
    pub len: u64,
}

impl Window {
    /// Is `tick` inside the window?
    #[must_use]
    pub fn contains(&self, tick: u64) -> bool {
        tick >= self.start && tick < self.start + self.len
    }
}

/// The full chaos campaign for one live run.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Run length in governor ticks.
    pub ticks: u64,
    /// Milliseconds per governor tick (must match the governor's
    /// quantum).
    pub quantum_ms: u64,
    /// Baseline offered load, requests per second.
    pub base_rps: f64,
    /// Mean handler service time, milliseconds.
    pub service_ms: f64,
    /// Flash crowd: offered load is multiplied by `burst_mult` here.
    pub burst: Window,
    /// Burst multiplier.
    pub burst_mult: f64,
    /// Slow-handler window: requests add `stall_ms` of service time.
    pub stall: Window,
    /// Extra per-request service during the stall window, ms.
    pub stall_ms: u64,
    /// Window in which clients abandon connections mid-request.
    pub drops: Window,
    /// Per-request drop probability inside the window.
    pub drop_prob: f64,
    /// Window in which requests ask the handler to panic.
    pub panics: Window,
    /// Per-request panic probability inside the window.
    pub panic_prob: f64,
    /// Corrupt the governor's arrival model at this tick.
    pub poison: Option<(u64, ModelCorruptionKind)>,
}

impl ChaosPlan {
    /// The standard F11 campaign over `ticks` quanta: a flash crowd
    /// and a slow-handler stall that *overlap* (the hard case: demand
    /// spikes exactly while capacity craters), plus connection drops,
    /// handler panics, and a NaN poisoning of the arrival model early
    /// in the run.
    #[must_use]
    pub fn standard(ticks: u64) -> Self {
        Self {
            ticks,
            quantum_ms: 10,
            base_rps: 60.0,
            service_ms: 4.0,
            burst: Window {
                start: ticks * 2 / 5,
                len: ticks / 4,
            },
            burst_mult: 4.0,
            stall: Window {
                start: ticks * 9 / 20,
                len: ticks / 4,
            },
            stall_ms: 60,
            drops: Window {
                start: ticks / 8,
                len: ticks / 8,
            },
            drop_prob: 0.10,
            panics: Window {
                start: ticks * 3 / 4,
                len: ticks / 10,
            },
            panic_prob: 0.15,
            poison: Some((ticks / 5, ModelCorruptionKind::NanPoison)),
        }
    }

    /// A calm plan (no faults, steady load) for smoke tests.
    #[must_use]
    pub fn calm(ticks: u64, rps: f64) -> Self {
        let none = Window {
            start: ticks,
            len: 0,
        };
        Self {
            ticks,
            quantum_ms: 10,
            base_rps: rps,
            service_ms: 3.0,
            burst: none,
            burst_mult: 1.0,
            stall: none,
            stall_ms: 0,
            drops: none,
            drop_prob: 0.0,
            panics: none,
            panic_prob: 0.0,
            poison: None,
        }
    }

    /// Offered rate (requests/ms) at `tick`.
    #[must_use]
    pub fn rate_per_ms(&self, tick: u64) -> f64 {
        let mult = if self.burst.contains(tick) {
            self.burst_mult
        } else {
            1.0
        };
        self.base_rps * mult / 1000.0
    }

    /// Draws the full request schedule from `seeds`. Deterministic:
    /// same seed, same plan → byte-identical schedule.
    #[must_use]
    pub fn schedule(&self, seeds: &SeedTree) -> Vec<RequestSpec> {
        let mut arrivals = seeds.child("chaos").rng("arrivals");
        let mut shape = seeds.child("chaos").rng("shape");
        let mut out = Vec::new();
        let horizon_ms = self.ticks * self.quantum_ms;
        let mut t_ms = 0.0_f64;
        loop {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let tick = (t_ms as u64) / self.quantum_ms.max(1);
            let rate = self.rate_per_ms(tick).max(1e-9);
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = arrivals.gen_range(1e-12..1.0);
            t_ms += -u.ln() / rate;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let at_ms = t_ms as u64;
            if at_ms >= horizon_ms {
                break;
            }
            let tick = at_ms / self.quantum_ms.max(1);
            let service = shape.gen_range(0.5..1.5) * self.service_ms;
            let stall_ms = if self.stall.contains(tick) {
                self.stall_ms
            } else {
                0
            };
            let panic = self.panics.contains(tick) && shape.gen_bool(self.panic_prob);
            let drop = self.drops.contains(tick) && shape.gen_bool(self.drop_prob);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            out.push(RequestSpec {
                at_ms,
                service_ms: (service.max(1.0)) as u64,
                stall_ms,
                panic,
                drop,
            });
        }
        out
    }
}

/// One scheduled client request.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct RequestSpec {
    /// Send instant, ms from run start.
    pub at_ms: u64,
    /// Requested handler service time, ms.
    pub service_ms: u64,
    /// Extra chaos stall the handler will add, ms.
    pub stall_ms: u64,
    /// Ask the handler to panic.
    pub panic: bool,
    /// Client abandons the connection right after sending.
    pub drop: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_seed_deterministic() {
        let plan = ChaosPlan::standard(300);
        let a = plan.schedule(&SeedTree::new(42));
        let b = plan.schedule(&SeedTree::new(42));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_ms, y.at_ms);
            assert_eq!(x.service_ms, y.service_ms);
            assert_eq!(x.panic, y.panic);
            assert_eq!(x.drop, y.drop);
        }
        let c = plan.schedule(&SeedTree::new(43));
        assert_ne!(
            a.iter().map(|r| r.at_ms).collect::<Vec<_>>(),
            c.iter().map(|r| r.at_ms).collect::<Vec<_>>()
        );
    }

    #[test]
    fn burst_window_densifies_arrivals() {
        let plan = ChaosPlan::standard(500);
        let sched = plan.schedule(&SeedTree::new(7));
        let ms_per_tick = plan.quantum_ms;
        let in_burst = |r: &RequestSpec| plan.burst.contains(r.at_ms / ms_per_tick);
        let burst_n = sched.iter().filter(|r| in_burst(r)).count() as f64;
        let burst_ms = (plan.burst.len * ms_per_tick) as f64;
        let calm_n = sched.iter().filter(|r| !in_burst(r)).count() as f64;
        let calm_ms = (plan.ticks * ms_per_tick) as f64 - burst_ms;
        assert!(
            burst_n / burst_ms > 2.0 * calm_n / calm_ms,
            "burst {burst_n}/{burst_ms}ms vs calm {calm_n}/{calm_ms}ms"
        );
    }

    #[test]
    fn calm_plan_has_no_faults() {
        let plan = ChaosPlan::calm(200, 40.0);
        let sched = plan.schedule(&SeedTree::new(1));
        assert!(!sched.is_empty());
        assert!(sched.iter().all(|r| !r.panic && !r.drop && r.stall_ms == 0));
    }
}
