//! One-call experiment arms: spawn a server, govern it (or not), replay
//! a chaos schedule, and collect every report the F11 harness needs.
//!
//! Two arms, identical offered load and faults:
//!
//! * **Supervised** — governed limits: the wall-clock [`Governor`]
//!   resizes the concurrency cap with the supervised autoscaler,
//!   engages slope-tilted shedding, tightens deadlines under pressure,
//!   and survives the chaos plan's model poisoning via the watchdog's
//!   fallback ladder.
//! * **Naive** — classic fixed provisioning: full worker pool from
//!   tick 0, a deep fixed queue, no shedding, a fixed deadline. The
//!   strawman is not artificially weak — it has *more* steady-state
//!   capacity than the supervised arm starts with; it just cannot
//!   renegotiate anything when the chaos windows hit.
//!
//! The governor runs on the calling thread (so its `sense`/`decide`
//! spans land in this thread's `SAS_OBS` sink) while the load pool
//! replays the schedule from worker threads; a completion flag stops
//! the governor as soon as the last client outcome is in.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use simkernel::SeedTree;

use crate::chaos::ChaosPlan;
use crate::governor::{Governor, GovernorConfig, Transition};
use crate::load::{run_load, LoadOptions, LoadReport};
use crate::server::{LimitPolicy, Server, ServerConfig, ServerReport};

/// Which provisioning policy an arm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Self-aware: supervised autoscaler + backpressure + shedding.
    Supervised,
    /// Fixed limits, no admission control.
    Naive,
}

impl Arm {
    /// Stable label used in metrics and traces.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Arm::Supervised => "supervised",
            Arm::Naive => "naive",
        }
    }
}

/// Everything one arm run produces.
#[derive(Debug)]
pub struct ArmResult {
    /// Client-side outcomes.
    pub load: LoadReport,
    /// Server-side counters + thread accounting.
    pub server: ServerReport,
    /// Governor transitions (empty for the naive arm).
    pub transitions: Vec<Transition>,
    /// Supervision counters (all zero for the naive arm).
    pub supervision: selfaware::supervision::SupervisionStats,
}

/// Worker pool size both arms get.
pub const POOL: usize = 8;
/// Client-side SLA bound (ms); matches the server's base deadline so
/// a request that survives the server's own deadline check but queued
/// too long still counts as late.
pub const SLA_MS: u64 = 250;

fn load_options(plan: &ChaosPlan) -> LoadOptions {
    let _ = plan;
    LoadOptions {
        clients: 96,
        sla_ms: SLA_MS,
        max_retries: 3,
        io_timeout: Duration::from_secs(2),
    }
}

/// Runs one arm against `plan` with seeds from `seeds`.
///
/// # Errors
/// Propagates server socket errors.
pub fn run_arm(arm: Arm, plan: &ChaosPlan, seeds: &SeedTree) -> std::io::Result<ArmResult> {
    let schedule = plan.schedule(seeds);
    let opts = load_options(plan);
    match arm {
        Arm::Supervised => {
            let handle = Server::spawn(&ServerConfig {
                max_workers: POOL,
                queue_cap: 64,
                deadline_ms: SLA_MS,
                policy: LimitPolicy::Governed,
            })?;
            let addr = handle.addr;
            let done = Arc::new(AtomicBool::new(false));
            let load_thread = spawn_load(addr, schedule, opts, Arc::clone(&done));
            let mut gov = Governor::new(
                &handle,
                GovernorConfig {
                    quantum: Duration::from_millis(plan.quantum_ms),
                    min_workers: 1,
                    max_workers: POOL,
                    queue_factor: 6,
                    queue_cap_max: 64,
                    shed_engage: 18.0,
                    shed_release: 6.0,
                    base_deadline_ms: SLA_MS,
                    poison_at: plan.poison,
                    stop_flag: Some(Arc::clone(&done)),
                },
            );
            // Generous horizon; the stop flag ends the loop as soon as
            // the last client outcome is recorded.
            gov.run(plan.ticks + 30_000 / plan.quantum_ms.max(1));
            let load = load_thread.join().unwrap_or_else(|_| LoadReport::default());
            let supervision = gov.supervision_stats();
            let server = handle.shutdown(Duration::from_secs(10));
            Ok(ArmResult {
                load,
                server,
                transitions: gov.transitions().to_vec(),
                supervision,
            })
        }
        Arm::Naive => {
            let handle = Server::spawn(&ServerConfig {
                max_workers: POOL,
                queue_cap: 512,
                deadline_ms: SLA_MS,
                policy: LimitPolicy::Fixed,
            })?;
            let load = run_load(handle.addr, &schedule, &opts);
            let server = handle.shutdown(Duration::from_secs(10));
            Ok(ArmResult {
                load,
                server,
                transitions: Vec::new(),
                supervision: selfaware::supervision::SupervisionStats::default(),
            })
        }
    }
}

fn spawn_load(
    addr: SocketAddr,
    schedule: Vec<crate::chaos::RequestSpec>,
    opts: LoadOptions,
    done: Arc<AtomicBool>,
) -> std::thread::JoinHandle<LoadReport> {
    let done_in = Arc::clone(&done);
    std::thread::Builder::new()
        .name("live-load".into())
        .spawn(move || {
            let report = run_load(addr, &schedule, &opts);
            done_in.store(true, Ordering::SeqCst);
            report
        })
        .unwrap_or_else(|e| {
            done.store(true, Ordering::SeqCst);
            // Spawn failure is unrecoverable for the arm; return an
            // already-finished thread with an empty report.
            std::thread::spawn(move || {
                let _ = e;
                LoadReport::default()
            })
        })
}
