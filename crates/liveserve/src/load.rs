//! Seeded open-loop load generator and its outcome report.
//!
//! The generator replays a [`crate::chaos::RequestSpec`] schedule
//! against a live server: a pool of client threads pulls specs from a
//! shared cursor, sleeps until each spec's send instant, and issues
//! the request. Clients honour the server's self-expression — a `429`
//! with `Retry-After-Ms` is retried after the advertised delay (a
//! bounded number of times), which is the cooperative half of the
//! backpressure protocol. Latency is measured from the *first* send
//! attempt, so shed-and-retry time counts against the SLA: shedding
//! only wins the experiment if the advertised retry delays actually
//! land requests in servable windows.
//!
//! The pool is open-loop up to its thread count: a spec whose send
//! instant has already passed (all clients busy) is sent immediately,
//! so sustained overload shows up as queueing at the server, not as a
//! silently thinned offered load.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::chaos::RequestSpec;

/// Terminal status of one scheduled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum Status {
    /// Served `200` (may have been shed and retried first).
    Ok,
    /// Still `429` after all retries.
    Shed,
    /// `503` — deadline exceeded at the server.
    Unavailable,
    /// `500` — handler panic.
    Failed,
    /// Connection/read error.
    ConnError,
    /// Chaos: the client abandoned the connection on purpose.
    Abandoned,
}

/// One scheduled request's outcome.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Outcome {
    /// Terminal status.
    pub status: Status,
    /// First-send → final-response latency, ms.
    pub latency_ms: f64,
    /// Send attempts (1 = no retry).
    pub attempts: u32,
}

/// Load-generator tuning.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Client threads (bounds in-flight requests; they mostly sleep).
    pub clients: usize,
    /// A `200` under this first-send latency counts as on-time.
    pub sla_ms: u64,
    /// Retries allowed after a `429` before giving up.
    pub max_retries: u32,
    /// Per-socket connect/read/write timeout.
    pub io_timeout: Duration,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            clients: 48,
            sla_ms: 300,
            max_retries: 2,
            io_timeout: Duration::from_secs(2),
        }
    }
}

/// Aggregated load-run results.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct LoadReport {
    /// Scheduled requests offered (excluding deliberate abandons).
    pub offered: u64,
    /// Requests that ended `200`.
    pub ok: u64,
    /// `200`s under the SLA measured from first send.
    pub on_time: u64,
    /// Requests still shed after retries.
    pub shed: u64,
    /// `503`s (server-side deadline).
    pub unavailable: u64,
    /// `500`s (handler panics).
    pub failed: u64,
    /// Connection errors.
    pub conn_errors: u64,
    /// Deliberately abandoned connections (chaos drops).
    pub abandoned: u64,
    /// Total retry attempts beyond the first send.
    pub retries: u64,
    /// Wall time of the whole run, seconds.
    pub wall_secs: f64,
    /// First-send latencies of `200` responses, ms (unsorted).
    pub latencies_ms: Vec<f64>,
}

impl LoadReport {
    /// On-time `200`s per wall second — the headline goodput metric.
    #[must_use]
    pub fn goodput(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.on_time as f64 / self.wall_secs
        }
    }

    /// Fraction of offered requests that terminally failed
    /// (`500` + `503` + connection errors + exhausted sheds).
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            (self.failed + self.unavailable + self.conn_errors + self.shed) as f64
                / self.offered as f64
        }
    }

    /// Latency percentile over `200` responses (`p` in `[0, 1]`), ms.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(f64::total_cmp);
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }
}

/// Replays `schedule` against `addr` and blocks until every request
/// has a terminal outcome.
#[must_use]
pub fn run_load(addr: SocketAddr, schedule: &[RequestSpec], opts: &LoadOptions) -> LoadReport {
    let schedule: Arc<Vec<RequestSpec>> = Arc::new(schedule.to_vec());
    let cursor = Arc::new(AtomicUsize::new(0));
    let epoch = Instant::now();

    let mut workers = Vec::new();
    for c in 0..opts.clients.max(1) {
        let schedule = Arc::clone(&schedule);
        let cursor = Arc::clone(&cursor);
        let opts = opts.clone();
        let handle = std::thread::Builder::new()
            .name(format!("live-client-{c}"))
            .spawn(move || client_loop(addr, &schedule, &cursor, epoch, &opts));
        if let Ok(h) = handle {
            workers.push(h);
        }
    }

    let mut outcomes: Vec<Outcome> = Vec::with_capacity(schedule.len());
    for w in workers {
        if let Ok(mut part) = w.join() {
            outcomes.append(&mut part);
        }
    }

    let mut report = LoadReport {
        wall_secs: epoch.elapsed().as_secs_f64(),
        ..LoadReport::default()
    };
    for o in &outcomes {
        report.retries += u64::from(o.attempts.saturating_sub(1));
        match o.status {
            Status::Abandoned => report.abandoned += 1,
            Status::Ok => {
                report.offered += 1;
                report.ok += 1;
                #[allow(clippy::cast_precision_loss)]
                if o.latency_ms <= opts.sla_ms as f64 {
                    report.on_time += 1;
                }
                report.latencies_ms.push(o.latency_ms);
            }
            Status::Shed => {
                report.offered += 1;
                report.shed += 1;
            }
            Status::Unavailable => {
                report.offered += 1;
                report.unavailable += 1;
            }
            Status::Failed => {
                report.offered += 1;
                report.failed += 1;
            }
            Status::ConnError => {
                report.offered += 1;
                report.conn_errors += 1;
            }
        }
    }
    report
}

fn client_loop(
    addr: SocketAddr,
    schedule: &[RequestSpec],
    cursor: &AtomicUsize,
    epoch: Instant,
    opts: &LoadOptions,
) -> Vec<Outcome> {
    let mut out = Vec::new();
    loop {
        let idx = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(spec) = schedule.get(idx) else {
            return out;
        };
        let target = Duration::from_millis(spec.at_ms);
        let elapsed = epoch.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
        out.push(issue(addr, spec, opts));
    }
}

fn issue(addr: SocketAddr, spec: &RequestSpec, opts: &LoadOptions) -> Outcome {
    let first_send = Instant::now();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let resp = one_attempt(addr, spec, opts);
        let latency_ms = first_send.elapsed().as_secs_f64() * 1000.0;
        let status = match resp {
            Attempt::Status(200) => Status::Ok,
            Attempt::Status(429) => Status::Shed,
            Attempt::Status(503) => Status::Unavailable,
            Attempt::Status(_) => Status::Failed,
            Attempt::RetryAfter(delay_ms) => {
                if attempts <= opts.max_retries {
                    // Advertised delay scaled by the attempt number:
                    // persistent overload pushes retries further out.
                    let backoff = delay_ms.saturating_mul(u64::from(attempts));
                    std::thread::sleep(Duration::from_millis(backoff.min(2500)));
                    continue;
                }
                Status::Shed
            }
            Attempt::ConnError => Status::ConnError,
            Attempt::Abandoned => Status::Abandoned,
        };
        return Outcome {
            status,
            latency_ms,
            attempts,
        };
    }
}

enum Attempt {
    /// Final HTTP status code.
    Status(u16),
    /// Shed with an advertised retry delay (ms); retry budget permitting.
    RetryAfter(u64),
    ConnError,
    Abandoned,
}

fn one_attempt(addr: SocketAddr, spec: &RequestSpec, opts: &LoadOptions) -> Attempt {
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, opts.io_timeout) else {
        return Attempt::ConnError;
    };
    let _ = stream.set_read_timeout(Some(opts.io_timeout));
    let _ = stream.set_write_timeout(Some(opts.io_timeout));
    let _ = stream.set_nodelay(true);
    let req = format!(
        "GET /work?ms={}&stall={}&panic={} HTTP/1.0\r\n\r\n",
        spec.service_ms,
        spec.stall_ms,
        u8::from(spec.panic)
    );
    if stream.write_all(req.as_bytes()).is_err() {
        return Attempt::ConnError;
    }
    if spec.drop {
        // Chaos: abandon the connection mid-request.
        drop(stream);
        return Attempt::Abandoned;
    }
    let mut body = String::new();
    if stream.read_to_string(&mut body).is_err() || body.is_empty() {
        return Attempt::ConnError;
    }
    let code: u16 = body
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    if code == 429 {
        let delay = body
            .lines()
            .find_map(|l| l.strip_prefix("Retry-After-Ms: "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(100);
        return Attempt::RetryAfter(delay);
    }
    Attempt::Status(code)
}
