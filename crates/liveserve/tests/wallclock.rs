//! Wall-clock smoke tests: the supervision ladder and the live server
//! running against real elapsed time.
//!
//! These are timing-tolerant by design — they assert *that* the
//! watchdog fires / the server stays clean within generous wall
//! deadlines, never exact tick counts.

use std::time::{Duration, Instant};

use cloudsim::autoscale::AutoscaleCore;
use liveserve::{run_arm, Arm, ChaosPlan};
use selfaware::runtime::{drive, ControlLoop};
use selfaware::supervision::ControlSource;
use simkernel::{SeedTree, Tick, WallClock};
use workloads::faults::ModelCorruptionKind;

/// A control loop whose supervised arrival model is artificially
/// stalled mid-run: the model stops learning while the input keeps
/// moving, which is exactly the `Stall` anomaly the supervisor's
/// watchdog exists to catch.
struct StalledController {
    core: AutoscaleCore,
    stall_at: u64,
}

impl ControlLoop for StalledController {
    type Sensed = f64;

    fn sense(&mut self, now: Tick) -> f64 {
        // A moving input: ramping arrivals.
        5.0 + (now.value() % 40) as f64
    }

    fn step(&mut self, now: Tick, arrivals: f64) {
        if now.value() == self.stall_at {
            self.core.inject_model_corruption(
                ModelCorruptionKind::StateFreeze { duration: 10_000 },
                now,
            );
        }
        let _ = self.core.desired_pool(arrivals, now, 1.0, 1, 32);
    }
}

#[test]
fn watchdog_fires_on_stalled_controller_within_wall_deadline() {
    let mut ctl = StalledController {
        core: AutoscaleCore::new("stall-test").supervised(),
        stall_at: 60,
    };
    // 1 ms quanta: 400 ticks is ~0.4 s of wall time; the deadline we
    // assert against is 10 s of wall clock.
    let started = Instant::now();
    let mut clock = WallClock::new(Duration::from_millis(1));
    drive(&mut clock, &mut ctl, Tick(400));
    let elapsed = started.elapsed();

    assert!(
        elapsed < Duration::from_secs(10),
        "wall deadline blown: {elapsed:?}"
    );
    let stats = ctl.core.supervision_stats().expect("supervised");
    assert!(
        stats.warns + stats.rollbacks + stats.fallbacks > 0,
        "watchdog never reacted to the stalled controller: {stats:?}"
    );
    // The ladder must have moved control away from (or restored) the
    // stalled model, not left it silently in charge: either we fell
    // back to the baseline, or a rollback restored a healthy model.
    let source = ctl.core.control_source().expect("supervised");
    assert!(
        source == ControlSource::Baseline || stats.rollbacks > 0,
        "stalled model left in control: {source:?} {stats:?}"
    );
}

#[test]
fn calm_supervised_run_is_clean_and_serves() {
    liveserve::install_quiet_panic_hook();
    let plan = ChaosPlan::calm(150, 40.0);
    let r = run_arm(Arm::Supervised, &plan, &SeedTree::new(7)).expect("arm runs");
    assert!(r.server.clean_shutdown, "dirty shutdown: {:?}", r.server);
    assert_eq!(
        r.server.threads_joined, r.server.threads_spawned,
        "thread leak: {:?}",
        r.server
    );
    assert!(r.load.ok > 0, "nothing served: {:?}", r.load);
    assert!(
        r.load.error_rate() < 0.2,
        "calm run should be mostly clean: {:?}",
        r.load
    );
}

#[test]
fn chaos_run_sheds_and_recovers_without_leaking() {
    liveserve::install_quiet_panic_hook();
    let plan = ChaosPlan::standard(250);
    let r = run_arm(Arm::Supervised, &plan, &SeedTree::new(11)).expect("arm runs");
    assert!(r.server.clean_shutdown, "dirty shutdown: {:?}", r.server);
    assert_eq!(
        r.server.threads_joined, r.server.threads_spawned,
        "thread leak: {:?}",
        r.server
    );
    let shed = r.transitions.iter().any(|t| t.event == "live:shed");
    let recover = r.transitions.iter().any(|t| t.event == "live:recover");
    assert!(
        shed && recover,
        "expected shed AND recover transitions, got {:?}",
        r.transitions
    );
    // The chaos plan poisons the arrival model; the supervised
    // governor must notice (warn at minimum) and keep the run alive.
    let s = r.supervision;
    assert!(
        s.warns + s.rollbacks + s.fallbacks > 0,
        "poisoned model went unnoticed: {s:?}"
    );
    assert!(r.load.ok > 0);
}
