//! Cores: speed, DVFS, power, and a lumped-RC thermal model.
//!
//! Power model: `P = P_idle + u · P_dyn · f³` where `u` is utilisation
//! this tick and `f` the DVFS frequency ratio (dynamic power scales
//! cubically with frequency at scaled voltage). Thermal model: first
//! order lumped RC, `T ← T + (P·R − (T − T_amb)) / τ` per tick.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use workloads::tasks::{Task, TaskClass};

/// Ambient temperature, °C.
pub const T_AMBIENT: f64 = 35.0;
/// Junction temperature cap, °C; exceeding it is a thermal violation
/// and forces a throttle to the lowest DVFS level.
pub const T_CAP: f64 = 85.0;

/// Discrete DVFS operating points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DvfsLevel {
    /// Half frequency.
    Low,
    /// Three-quarter frequency.
    Mid,
    /// Full frequency.
    High,
}

impl DvfsLevel {
    /// All levels, ascending.
    pub const ALL: [DvfsLevel; 3] = [DvfsLevel::Low, DvfsLevel::Mid, DvfsLevel::High];

    /// Frequency ratio `f ∈ (0, 1]`.
    #[must_use]
    pub fn freq(self) -> f64 {
        match self {
            DvfsLevel::Low => 0.5,
            DvfsLevel::Mid => 0.75,
            DvfsLevel::High => 1.0,
        }
    }

    /// One step down (saturating).
    #[must_use]
    pub fn lower(self) -> DvfsLevel {
        match self {
            DvfsLevel::High => DvfsLevel::Mid,
            _ => DvfsLevel::Low,
        }
    }

    /// One step up (saturating).
    #[must_use]
    pub fn higher(self) -> DvfsLevel {
        match self {
            DvfsLevel::Low => DvfsLevel::Mid,
            _ => DvfsLevel::High,
        }
    }
}

/// Big (fast, hot) or little (slow, cool) core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// High-performance core.
    Big,
    /// Efficiency core.
    Little,
}

/// Static description of a core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreSpec {
    /// Big or little.
    pub kind: CoreKind,
    /// Peak speed in work units per tick (at full frequency).
    pub speed: f64,
    /// Idle power, W.
    pub power_idle: f64,
    /// Dynamic power at full frequency and utilisation, W.
    pub power_dyn: f64,
    /// Thermal resistance, °C per W.
    pub r_th: f64,
    /// Thermal time constant, ticks.
    pub tau: f64,
}

impl CoreSpec {
    /// A typical big core.
    #[must_use]
    pub fn big() -> Self {
        Self {
            kind: CoreKind::Big,
            speed: 3.0,
            power_idle: 0.6,
            power_dyn: 6.0,
            r_th: 9.0,
            tau: 20.0,
        }
    }

    /// A typical little core.
    #[must_use]
    pub fn little() -> Self {
        Self {
            kind: CoreKind::Little,
            speed: 1.2,
            power_idle: 0.15,
            power_dyn: 1.2,
            r_th: 7.0,
            tau: 20.0,
        }
    }
}

/// A live core: queue, DVFS setting, temperature, energy meter.
#[derive(Debug, Clone)]
pub struct Core {
    spec: CoreSpec,
    dvfs: DvfsLevel,
    queue: VecDeque<(Task, f64)>,
    temp: f64,
    energy: f64,
    busy_ticks: u64,
    throttled_ticks: u64,
    completed: u64,
    online: bool,
}

impl Core {
    /// Creates an idle core at ambient temperature and full frequency.
    #[must_use]
    pub fn new(spec: CoreSpec) -> Self {
        Self {
            spec,
            dvfs: DvfsLevel::High,
            queue: VecDeque::new(),
            temp: T_AMBIENT,
            energy: 0.0,
            busy_ticks: 0,
            throttled_ticks: 0,
            completed: 0,
            online: true,
        }
    }

    /// Whether the core is currently online.
    #[must_use]
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Takes the core offline (a core fault). The task being executed
    /// loses its partial progress — restart semantics — and the whole
    /// queue is orphaned and returned so the scheduler can
    /// redistribute it. Idempotent: failing an offline core returns an
    /// empty queue.
    pub fn fail(&mut self) -> Vec<Task> {
        self.online = false;
        // Dropping the tracked remaining-work alongside each task is
        // what gives restart semantics: re-enqueueing starts from
        // `task.work` again.
        self.queue.drain(..).map(|(task, _)| task).collect()
    }

    /// Brings a failed core back online, idle and at full frequency
    /// (a reboot does not reset temperature instantly — the die keeps
    /// whatever heat it has).
    pub fn recover(&mut self) {
        self.online = true;
        self.dvfs = DvfsLevel::High;
    }

    /// The core's spec.
    #[must_use]
    pub fn spec(&self) -> &CoreSpec {
        &self.spec
    }

    /// Current DVFS level.
    #[must_use]
    pub fn dvfs(&self) -> DvfsLevel {
        self.dvfs
    }

    /// Sets the DVFS level.
    pub fn set_dvfs(&mut self, level: DvfsLevel) {
        self.dvfs = level;
    }

    /// Current junction temperature, °C.
    #[must_use]
    pub fn temperature(&self) -> f64 {
        self.temp
    }

    /// Total energy consumed so far, joule-equivalents (W·tick).
    #[must_use]
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Queue length.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Remaining work in the queue.
    #[must_use]
    pub fn backlog(&self) -> f64 {
        self.queue.iter().map(|(_, w)| w).sum()
    }

    /// Completed task count.
    #[must_use]
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Ticks spent throttled (forced low frequency by the thermal
    /// cap).
    #[must_use]
    pub fn throttled_ticks(&self) -> u64 {
        self.throttled_ticks
    }

    /// Effective service speed for a task class at the current DVFS
    /// level: compute scales with frequency; memory-bound work is
    /// capped by the memory subsystem (little cores lose nothing);
    /// interactive behaves like compute.
    #[must_use]
    pub fn effective_speed(&self, class: TaskClass) -> f64 {
        let f = self.dvfs.freq();
        match class {
            TaskClass::Compute | TaskClass::Interactive => self.spec.speed * f,
            TaskClass::Memory => (self.spec.speed * f).min(1.2),
        }
    }

    /// Enqueues a task.
    pub fn enqueue(&mut self, task: Task) {
        let work = task.work;
        self.queue.push_back((task, work));
    }

    /// Advances one tick: executes queued work, meters power, updates
    /// temperature, applies thermal throttling. Returns tasks that
    /// completed this tick (with their total work as scheduled).
    pub fn step(&mut self, now: simkernel::Tick) -> Vec<(Task, u64)> {
        // An offline core executes nothing and draws no power; the die
        // cools toward ambient.
        if !self.online {
            self.temp += (T_AMBIENT - self.temp) / self.spec.tau;
            return Vec::new();
        }
        // Thermal throttle: at or over cap, force lowest frequency.
        if self.temp >= T_CAP {
            self.dvfs = DvfsLevel::Low;
            self.throttled_ticks += 1;
        }
        let mut done = Vec::new();
        let mut remaining_tick = 1.0; // fraction of the tick left
        let mut utilisation = 0.0;
        while remaining_tick > 1e-9 {
            let Some(&(ref task, left_now)) = self.queue.front() else {
                break;
            };
            let speed = self.effective_speed(task.class).max(1e-9);
            let time_needed = left_now / speed;
            if time_needed <= remaining_tick {
                remaining_tick -= time_needed;
                utilisation += time_needed;
                let (task, _) = self.queue.pop_front().expect("front exists");
                self.completed += 1;
                let latency = now.value().saturating_sub(task.arrived.value()).max(1);
                done.push((task, latency));
            } else {
                let (_, left) = self.queue.front_mut().expect("front exists");
                *left -= speed * remaining_tick;
                utilisation += remaining_tick;
                remaining_tick = 0.0;
            }
        }
        self.busy_ticks += u64::from(utilisation > 0.0);
        // Power & thermal integration for this tick.
        let f = self.dvfs.freq();
        let power = self.spec.power_idle + utilisation.min(1.0) * self.spec.power_dyn * f * f * f;
        self.energy += power;
        self.temp += (power * self.spec.r_th + T_AMBIENT - self.temp) / self.spec.tau;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::Tick;

    fn task(id: u64, class: TaskClass, work: f64, t: u64) -> Task {
        Task {
            id,
            class,
            work,
            arrived: Tick(t),
        }
    }

    #[test]
    fn dvfs_levels_ordered() {
        assert!(DvfsLevel::Low.freq() < DvfsLevel::Mid.freq());
        assert!(DvfsLevel::Mid.freq() < DvfsLevel::High.freq());
        assert_eq!(DvfsLevel::Low.lower(), DvfsLevel::Low);
        assert_eq!(DvfsLevel::Low.higher(), DvfsLevel::Mid);
        assert_eq!(DvfsLevel::High.higher(), DvfsLevel::High);
    }

    #[test]
    fn compute_scales_with_dvfs_memory_does_not() {
        let mut c = Core::new(CoreSpec::big());
        assert_eq!(c.effective_speed(TaskClass::Compute), 3.0);
        assert_eq!(c.effective_speed(TaskClass::Memory), 1.2);
        c.set_dvfs(DvfsLevel::Low);
        assert_eq!(c.effective_speed(TaskClass::Compute), 1.5);
        assert_eq!(c.effective_speed(TaskClass::Memory), 1.2);
    }

    #[test]
    fn little_core_matches_big_on_memory_tasks() {
        let big = Core::new(CoreSpec::big());
        let little = Core::new(CoreSpec::little());
        assert_eq!(
            big.effective_speed(TaskClass::Memory),
            little.effective_speed(TaskClass::Memory)
        );
        assert!(
            big.effective_speed(TaskClass::Compute) > little.effective_speed(TaskClass::Compute)
        );
    }

    #[test]
    fn executes_and_reports_latency() {
        let mut c = Core::new(CoreSpec::big());
        c.enqueue(task(0, TaskClass::Compute, 6.0, 0));
        assert!(c.step(Tick(1)).is_empty()); // 3 of 6 done
        let done = c.step(Tick(2));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 2);
        assert_eq!(c.completed_count(), 1);
    }

    #[test]
    fn multiple_small_tasks_in_one_tick() {
        let mut c = Core::new(CoreSpec::big());
        for i in 0..3 {
            c.enqueue(task(i, TaskClass::Compute, 1.0, 0));
        }
        let done = c.step(Tick(1));
        assert_eq!(done.len(), 3);
    }

    #[test]
    fn heats_under_load_cools_idle() {
        let mut c = Core::new(CoreSpec::big());
        for i in 0..1000 {
            c.enqueue(task(i, TaskClass::Compute, 3.0, 0));
        }
        let mut peak: f64 = 0.0;
        for t in 1..=200u64 {
            c.step(Tick(t));
            peak = peak.max(c.temperature());
        }
        assert!(peak > 60.0, "sustained load should heat the core: {peak}");
        // Drain queue, let it idle at low frequency.
        let mut c2 = c.clone();
        c2.queue.clear();
        for t in 201..=600u64 {
            c2.step(Tick(t));
        }
        assert!(c2.temperature() < peak - 10.0, "idle core should cool");
    }

    #[test]
    fn thermal_cap_throttles() {
        let mut c = Core::new(CoreSpec::big());
        for i in 0..100_000 {
            c.enqueue(task(i, TaskClass::Compute, 3.0, 0));
        }
        let mut throttled = false;
        for t in 1..=2000u64 {
            c.step(Tick(t));
            throttled |= c.throttled_ticks() > 0;
        }
        assert!(
            throttled,
            "big core at full tilt should hit the cap (T = {})",
            c.temperature()
        );
        // While throttled, frequency is forced low.
        assert_eq!(c.dvfs(), DvfsLevel::Low);
    }

    #[test]
    fn little_core_runs_cooler() {
        let mut big = Core::new(CoreSpec::big());
        let mut little = Core::new(CoreSpec::little());
        for i in 0..10_000 {
            big.enqueue(task(i, TaskClass::Compute, 1.0, 0));
            little.enqueue(task(i, TaskClass::Compute, 1.0, 0));
        }
        for t in 1..=300u64 {
            big.step(Tick(t));
            little.step(Tick(t));
        }
        assert!(little.temperature() < big.temperature());
        assert!(little.energy() < big.energy());
    }

    #[test]
    fn fail_orphans_queue_with_restart_semantics() {
        let mut c = Core::new(CoreSpec::big());
        c.enqueue(task(0, TaskClass::Compute, 6.0, 0));
        c.enqueue(task(1, TaskClass::Compute, 2.0, 0));
        c.step(Tick(1)); // partially executes task 0
        assert!(c.is_online());
        let orphans = c.fail();
        assert!(!c.is_online());
        assert_eq!(orphans.len(), 2);
        assert_eq!(orphans[0].work, 6.0, "partial progress is lost");
        assert!(c.fail().is_empty(), "idempotent");
        // Offline: no execution, no energy, cools toward ambient.
        let e = c.energy();
        c.enqueue(task(2, TaskClass::Compute, 1.0, 0));
        assert!(c.step(Tick(2)).is_empty());
        assert_eq!(c.energy(), e);
        c.recover();
        assert!(c.is_online());
        assert_eq!(c.dvfs(), DvfsLevel::High);
        let done = c.step(Tick(3));
        assert_eq!(done.len(), 1, "queued work runs after recovery");
    }

    #[test]
    fn offline_core_cools() {
        let mut c = Core::new(CoreSpec::big());
        for i in 0..1000 {
            c.enqueue(task(i, TaskClass::Compute, 3.0, 0));
        }
        for t in 1..=100u64 {
            c.step(Tick(t));
        }
        let hot = c.temperature();
        c.fail();
        for t in 101..=400u64 {
            c.step(Tick(t));
        }
        assert!(c.temperature() < hot - 10.0);
        assert!((c.temperature() - T_AMBIENT).abs() < 5.0);
    }

    #[test]
    fn energy_accrues_even_idle() {
        let mut c = Core::new(CoreSpec::little());
        for t in 1..=10u64 {
            c.step(Tick(t));
        }
        assert!((c.energy() - 10.0 * 0.15).abs() < 1e-9);
        assert_eq!(c.queue_len(), 0);
        assert_eq!(c.backlog(), 0.0);
    }
}
