//! # multicore — a heterogeneous multi-core platform simulator
//!
//! The paper's hardware case study (Sections II–III, refs 8, 16, 47):
//! Agarwal's argument that design-time resource allocation should give
//! way to run-time self-aware allocation, and Agne/Platzner's
//! self-aware heterogeneous multicores. The simulated platform has
//! big and little cores, per-core DVFS, and a lumped-RC thermal model;
//! the workload is a phase-switching task mix (compute-heavy ↔
//! memory-bound ↔ interactive) whose composition the design-time
//! scheduler cannot know.
//!
//! * [`core`] — core specs, DVFS, queues, power and temperature;
//! * [`sched`] — schedulers: design-time static pinning, greedy
//!   fastest-core, and the self-aware Q-learning mapper with a
//!   thermal-forecast DVFS governor;
//! * [`sim`] — the scenario runner behind experiment T4.
//!
//! Trade-off under management: throughput vs energy vs thermal
//! violations.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::panic)]
#![warn(missing_docs)]

pub mod core;
pub mod sched;
pub mod sim;

pub use crate::core::{Core, CoreKind, CoreSpec, DvfsLevel};
pub use crate::sched::Scheduler;
pub use crate::sim::{run_multicore, MulticoreConfig, MulticoreResult};
