//! The T4 scenario runner: phase-switching task mix over a 4+4
//! big.LITTLE platform.

use crate::core::{Core, CoreSpec};
use crate::sched::Scheduler;
use selfaware::goals::{Direction, Goal, Objective};
use selfaware::replay::InterventionMask;
use simkernel::obs;
use simkernel::rng::SeedTree;
use simkernel::{MetricSet, Tick, TimeSeries};
use workloads::faults::{FaultKind, FaultPlan};
use workloads::tasks::{TaskMix, TaskStream};

/// Configuration of a multicore scenario.
#[derive(Debug, Clone)]
pub struct MulticoreConfig {
    /// Number of big cores.
    pub big_cores: usize,
    /// Number of little cores.
    pub little_cores: usize,
    /// Simulation length in ticks.
    pub steps: u64,
    /// Task phases (onset tick, mix).
    pub phases: Vec<(u64, TaskMix)>,
    /// Deadline for interactive tasks (ticks); others unconstrained.
    pub interactive_deadline: u64,
    /// Scheduled faults. `CoreFail` / `CoreRecover` take cores
    /// offline — a failing core orphans its queue (partial progress
    /// lost), the scheduler immediately redistributes the orphans,
    /// and assignments landing on an offline core are redirected to
    /// the next online one. `ModelCorruption` poisons the scheduler's
    /// thermal-forecast bank. Other kinds are ignored.
    pub faults: FaultPlan,
    /// Scheduler under test.
    pub scheduler: Scheduler,
    /// Counterfactual intervention mask, applied to the thermal
    /// supervisor. [`InterventionMask::allow_all`] (the default)
    /// reproduces historical behaviour bit for bit.
    pub mask: InterventionMask,
}

impl MulticoreConfig {
    /// Standard T4 scenario: 4 big + 4 little cores; compute-heavy
    /// phase, then memory-bound batch phase, then a mixed interactive
    /// phase.
    #[must_use]
    pub fn standard(scheduler: Scheduler, steps: u64) -> Self {
        let third = steps / 3;
        Self {
            big_cores: 4,
            little_cores: 4,
            steps,
            phases: vec![
                (0, TaskMix::new(3.0, [0.8, 0.1, 0.1], 2.5)),
                (third, TaskMix::new(3.5, [0.1, 0.8, 0.1], 2.5)),
                (2 * third, TaskMix::new(4.0, [0.3, 0.3, 0.4], 1.8)),
            ],
            interactive_deadline: 8,
            faults: FaultPlan::none(),
            scheduler,
            mask: InterventionMask::allow_all(),
        }
    }
}

/// Outputs of a multicore run.
#[derive(Debug, Clone)]
pub struct MulticoreResult {
    /// Scalar metrics (see [`run_multicore`] for keys).
    pub metrics: MetricSet,
    /// Max core temperature per 25 ticks.
    pub peak_temp: TimeSeries,
}

/// The platform goal: throughput up, energy and thermal stress down.
#[must_use]
pub fn multicore_goal() -> Goal {
    Goal::new("fast-cool-frugal")
        .objective(Objective::new(
            "completion_ratio",
            Direction::Maximize,
            1.0,
            2.0,
        ))
        .objective(Objective::new(
            "energy_per_task",
            Direction::Minimize,
            4.0,
            1.5,
        ))
        .objective(Objective::new(
            "throttle_ratio",
            Direction::Minimize,
            0.05,
            1.5,
        ))
        .objective(Objective::new(
            "deadline_miss_rate",
            Direction::Minimize,
            0.3,
            1.0,
        ))
        .objective(Objective::new(
            "mean_latency",
            Direction::Minimize,
            30.0,
            1.0,
        ))
}

/// Runs a scenario. Metric keys:
///
/// * `arrived`, `completed`, `completion_ratio`;
/// * `mean_latency` — over completed tasks;
/// * `deadline_miss_rate` — interactive tasks late / interactive
///   completed;
/// * `energy_total`, `energy_per_task`;
/// * `throttle_ratio` — throttled core-ticks / total core-ticks;
/// * `peak_temp` — maximum junction temperature seen;
/// * `drift_events` — meta-level detections;
/// * `utility` — [`multicore_goal`] composite.
#[must_use]
pub fn run_multicore(cfg: &MulticoreConfig, seeds: &SeedTree) -> MulticoreResult {
    assert!(cfg.big_cores + cfg.little_cores > 0, "need cores");
    let mut cores: Vec<Core> = (0..cfg.big_cores)
        .map(|_| Core::new(CoreSpec::big()))
        .chain((0..cfg.little_cores).map(|_| Core::new(CoreSpec::little())))
        .collect();
    let mut stream = TaskStream::new(cfg.phases.clone(), seeds.rng("tasks"));
    let mut controller = cfg.scheduler.build(cores.len());
    controller.set_mask(cfg.mask);
    let mut sched_rng = seeds.rng("sched");

    let mut arrived = 0u64;
    let mut completed = 0u64;
    let mut latency_sum = 0.0;
    let mut interactive_done = 0u64;
    let mut interactive_late = 0u64;
    let mut peak_temp_overall: f64 = 0.0;
    let mut peak_series = TimeSeries::new(cfg.scheduler.label());

    for t in 0..cfg.steps {
        let now = Tick(t);

        // Phase spans (sense → decide → act) are profiling only —
        // timing never feeds scheduling (see `simkernel::obs`).
        let sense_span = obs::span("multicore:sense");

        // Apply scheduled core faults before anything schedules.
        for ev in cfg.faults.events_at(now) {
            match ev.kind {
                FaultKind::CoreFail { core } if core < cores.len() => {
                    let orphans = cores[core].fail();
                    for task in orphans {
                        let idx = controller.assign(&cores, &task, &mut sched_rng);
                        let idx = redirect_online(&cores, idx);
                        cores[idx].enqueue(task);
                    }
                }
                FaultKind::CoreRecover { core } if core < cores.len() => {
                    cores[core].recover();
                }
                FaultKind::ModelCorruption { kind, .. } => {
                    controller.inject_model_corruption(kind, now);
                }
                _ => {}
            }
        }

        drop(sense_span);
        let decide_span = obs::span("multicore:decide");
        controller.begin_tick(&mut cores, now);
        for task in stream.emit(now) {
            arrived += 1;
            let idx = controller.assign(&cores, &task, &mut sched_rng);
            let idx = redirect_online(&cores, idx);
            cores[idx].enqueue(task);
        }
        drop(decide_span);
        let _act_span = obs::span("multicore:act");
        #[allow(clippy::needless_range_loop)]
        // index needed: controller.feedback borrows alongside cores[i]
        for i in 0..cores.len() {
            for (task, latency) in cores[i].step(now) {
                completed += 1;
                latency_sum += latency as f64;
                if task.class == workloads::tasks::TaskClass::Interactive {
                    interactive_done += 1;
                    if latency > cfg.interactive_deadline {
                        interactive_late += 1;
                    }
                }
                // Split borrow: clone the core's lightweight view for
                // feedback (spec + kind are all it reads).
                let core_view = cores[i].clone();
                controller.feedback(&task, &core_view, i, latency);
            }
            peak_temp_overall = peak_temp_overall.max(cores[i].temperature());
        }
        if t % 25 == 0 {
            let mx = cores
                .iter()
                .map(Core::temperature)
                .fold(f64::NEG_INFINITY, f64::max);
            peak_series.push(now, mx);
        }
    }

    let energy_total: f64 = cores.iter().map(Core::energy).sum();
    let throttled: u64 = cores.iter().map(Core::throttled_ticks).sum();
    let core_ticks = (cfg.steps * cores.len() as u64).max(1);

    let mut metrics = MetricSet::new();
    metrics.set("arrived", arrived as f64);
    metrics.set("completed", completed as f64);
    metrics.set("completion_ratio", completed as f64 / arrived.max(1) as f64);
    metrics.set(
        "mean_latency",
        if completed > 0 {
            latency_sum / completed as f64
        } else {
            0.0
        },
    );
    metrics.set(
        "deadline_miss_rate",
        if interactive_done > 0 {
            interactive_late as f64 / interactive_done as f64
        } else {
            0.0
        },
    );
    metrics.set("energy_total", energy_total);
    metrics.set(
        "energy_per_task",
        if completed > 0 {
            energy_total / completed as f64
        } else {
            energy_total
        },
    );
    metrics.set("throttle_ratio", throttled as f64 / core_ticks as f64);
    metrics.set("peak_temp", peak_temp_overall);
    metrics.set("drift_events", f64::from(controller.drift_events()));
    let sup = controller.supervision_stats().unwrap_or_default();
    metrics.set("model_rollbacks", f64::from(sup.rollbacks));
    metrics.set("model_fallbacks", f64::from(sup.fallbacks));
    metrics.set("model_repromotions", f64::from(sup.repromotions));
    let utility = multicore_goal().utility(|k| metrics.get(k));
    metrics.set("utility", utility);

    MulticoreResult {
        metrics,
        peak_temp: peak_series,
    }
}

/// Redirects an assignment landing on an offline core to the next
/// online core (deterministic wrap-around scan). If every core is
/// offline the original index is kept — the task waits in that queue
/// until the core recovers.
fn redirect_online(cores: &[Core], idx: usize) -> usize {
    if cores[idx].is_online() {
        return idx;
    }
    (1..cores.len())
        .map(|d| (idx + d) % cores.len())
        .find(|&j| cores[j].is_online())
        .unwrap_or(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(s: Scheduler, seed: u64, steps: u64) -> MulticoreResult {
        run_multicore(&MulticoreConfig::standard(s, steps), &SeedTree::new(seed))
    }

    fn faulty_cfg(s: Scheduler, steps: u64) -> MulticoreConfig {
        use workloads::faults::FaultEvent;
        let mut cfg = MulticoreConfig::standard(s, steps);
        // Fail three of the four big cores for the middle third.
        let mut plan = FaultPlan::none();
        for core in 0..3 {
            plan = plan
                .and(FaultEvent::core_fail(Tick(steps / 3), core))
                .and(FaultEvent::core_recover(Tick(2 * steps / 3), core));
        }
        cfg.faults = plan;
        cfg
    }

    #[test]
    fn core_failures_redistribute_work() {
        let steps = 2400;
        let r = run_multicore(&faulty_cfg(Scheduler::Greedy, steps), &SeedTree::new(2));
        let m = &r.metrics;
        // Losing 3 of 4 big cores mid-run must not lose the workload:
        // orphans restart elsewhere and the run still completes most
        // tasks by the end.
        assert!(
            m.get("completion_ratio").unwrap() > 0.7,
            "completion {:?}",
            m.get("completion_ratio")
        );
        let healthy = run(Scheduler::Greedy, 2, steps);
        assert!(
            m.get("mean_latency").unwrap() > healthy.metrics.get("mean_latency").unwrap(),
            "losing capacity must cost latency"
        );
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let a = run_multicore(&faulty_cfg(Scheduler::SelfAware, 900), &SeedTree::new(4));
        let b = run_multicore(&faulty_cfg(Scheduler::SelfAware, 900), &SeedTree::new(4));
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn scenario_is_sane() {
        let r = run(Scheduler::Greedy, 1, 2000);
        let m = &r.metrics;
        assert!(m.get("arrived").unwrap() > 4000.0);
        assert!(m.get("completion_ratio").unwrap() > 0.8);
        assert!(m.get("peak_temp").unwrap() > crate::core::T_AMBIENT);
        assert!(m.get("peak_temp").unwrap() < crate::core::T_CAP + 20.0);
        assert!(!r.peak_temp.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(Scheduler::StaticPin, 3, 800);
        let b = run(Scheduler::StaticPin, 3, 800);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn self_aware_saves_energy_per_task() {
        let mut wins = 0;
        for seed in 0..3 {
            let sa = run(Scheduler::SelfAware, seed, 3000);
            let greedy = run(Scheduler::Greedy, seed, 3000);
            let e_sa = sa.metrics.get("energy_per_task").unwrap();
            let e_gr = greedy.metrics.get("energy_per_task").unwrap();
            if e_sa < e_gr {
                wins += 1;
            }
        }
        assert!(wins >= 2, "self-aware cheaper energy on {wins}/3 seeds");
    }

    #[test]
    fn self_aware_utility_beats_static_pin() {
        let mut wins = 0;
        for seed in 0..3 {
            let sa = run(Scheduler::SelfAware, seed, 3000);
            let pin = run(Scheduler::StaticPin, seed, 3000);
            if sa.metrics.get("utility") > pin.metrics.get("utility") {
                wins += 1;
            }
        }
        assert!(wins >= 2, "self-aware won utility on {wins}/3 seeds");
    }

    #[test]
    fn static_pin_runs_hotter_or_equal() {
        let sa = run(Scheduler::SelfAware, 5, 2500);
        let pin = run(Scheduler::StaticPin, 5, 2500);
        assert!(
            sa.metrics.get("throttle_ratio").unwrap()
                <= pin.metrics.get("throttle_ratio").unwrap() + 1e-9
        );
    }

    #[test]
    fn supervised_scheduler_survives_thermal_model_corruption() {
        use workloads::faults::{FaultEvent, ModelCorruptionKind};
        let steps = 2400;
        let corrupted = |s: Scheduler| {
            let mut cfg = MulticoreConfig::standard(s, steps);
            cfg.faults = FaultPlan::none()
                .and(FaultEvent::model_corruption(
                    Tick(steps / 3),
                    0,
                    ModelCorruptionKind::NanPoison,
                ))
                .and(FaultEvent::model_corruption(
                    Tick(2 * steps / 3),
                    0,
                    ModelCorruptionKind::StateFreeze {
                        duration: steps / 8,
                    },
                ));
            run_multicore(&cfg, &SeedTree::new(7))
        };
        let sup = corrupted(Scheduler::SupervisedSelfAware);
        let m = &sup.metrics;
        assert!(
            m.get("model_rollbacks").unwrap() + m.get("model_fallbacks").unwrap() >= 1.0,
            "supervisor never intervened: {m:?}"
        );
        assert!(
            m.get("completion_ratio").unwrap() > 0.7,
            "supervised run collapsed: {m:?}"
        );
        // Deterministic per seed, including the supervision path.
        assert_eq!(
            corrupted(Scheduler::SupervisedSelfAware).metrics,
            sup.metrics
        );
    }

    #[test]
    fn goal_prefers_efficient_outcomes() {
        let g = multicore_goal();
        let good = g.utility(|k| match k {
            "completion_ratio" => Some(0.99),
            "energy_per_task" => Some(1.0),
            "throttle_ratio" => Some(0.0),
            "deadline_miss_rate" => Some(0.02),
            _ => None,
        });
        let bad = g.utility(|k| match k {
            "completion_ratio" => Some(0.9),
            "energy_per_task" => Some(4.0),
            "throttle_ratio" => Some(0.1),
            "deadline_miss_rate" => Some(0.4),
            _ => None,
        });
        assert!(good > bad);
    }
}

#[cfg(test)]
mod probe {
    use super::*;

    #[test]
    #[ignore]
    fn print_scheduler_metrics() {
        for s in [
            Scheduler::StaticPin,
            Scheduler::Greedy,
            Scheduler::SelfAware,
        ] {
            let r = run_multicore(&MulticoreConfig::standard(s, 3000), &SeedTree::new(0));
            println!("--- {}", s.label());
            for (k, v) in r.metrics.iter() {
                println!("{k} = {v:.4}");
            }
        }
    }
}
