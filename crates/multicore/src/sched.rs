//! Schedulers: design-time pinning, greedy, and the self-aware
//! learning mapper with a thermal-forecast DVFS governor.
//!
//! The self-aware scheduler exercises three paper capabilities:
//!
//! * **time awareness** — per-core temperature forecasting (Holt)
//!   feeds a proactive DVFS governor that backs off *before* the cap,
//!   avoiding hard throttles;
//! * **goal awareness** — task-to-core mapping is learned by tabular
//!   Q-learning whose reward is the explicit multi-objective trade-off
//!   (latency vs energy);
//! * **meta-self-awareness** — a drift detector on reward re-opens
//!   exploration when the task mix changes phase.

use crate::core::{Core, CoreKind, DvfsLevel, T_CAP};

use selfaware::explain::ExplanationLog;
use selfaware::meta::ExplorationGovernor;
use selfaware::models::holt::Holt;
use selfaware::models::qlearn::QLearner;
use selfaware::models::{Forecaster, OnlineModel};
use selfaware::replay::InterventionMask;
use selfaware::supervision::{ControlSource, Evidence, SupervisionStats, Supervisor};
use simkernel::rng::Rng;
use simkernel::Tick;
use workloads::faults::ModelCorruptionKind;
use workloads::tasks::{Task, TaskClass};

/// Scheduler selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Design-time static pinning: each task class is pinned to the
    /// core type the designer assumed best (compute→big,
    /// memory→little, interactive→big), all cores at full frequency.
    StaticPin,
    /// Greedy: always the core with the least normalised backlog,
    /// full frequency, no thermal anticipation.
    Greedy,
    /// The self-aware learning mapper + DVFS governor.
    SelfAware,
    /// Self-aware mapper whose thermal-forecast bank runs under a
    /// meta-self-aware [`Supervisor`]: corrupted forecasts are caught
    /// by the watchdogs, rolled back to a checkpoint, or benched in
    /// favour of reactive (current-temperature) DVFS.
    SupervisedSelfAware,
}

impl Scheduler {
    /// Table label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Scheduler::StaticPin => "static-pin",
            Scheduler::Greedy => "greedy-fastest",
            Scheduler::SelfAware => "self-aware",
            Scheduler::SupervisedSelfAware => "supervised",
        }
    }

    /// Instantiates the runtime controller.
    #[must_use]
    pub fn build(&self, n_cores: usize) -> SchedController {
        let state = match self {
            Scheduler::StaticPin | Scheduler::Greedy => None,
            Scheduler::SelfAware => Some(SelfAwareSched::new(n_cores)),
            Scheduler::SupervisedSelfAware => Some(SelfAwareSched::new(n_cores).supervised()),
        };
        SchedController {
            kind: *self,
            state,
            rr_next: 0,
        }
    }
}

/// Runtime scheduling controller.
#[derive(Debug)]
pub struct SchedController {
    kind: Scheduler,
    state: Option<SelfAwareSched>,
    rr_next: usize,
}

impl SchedController {
    /// Applies a counterfactual intervention mask to the thermal
    /// supervisor (no-op for unsupervised schedulers). Masked paths
    /// consume no randomness, so this never perturbs seed streams.
    pub fn set_mask(&mut self, mask: InterventionMask) {
        if let Some(state) = &mut self.state {
            if let Some(svc) = &mut state.supervision {
                svc.sup.set_mask(mask);
            }
        }
    }

    /// Per-tick pre-processing: DVFS governance (self-aware only).
    pub fn begin_tick(&mut self, cores: &mut [Core], now: Tick) {
        match self.kind {
            Scheduler::StaticPin | Scheduler::Greedy => {
                for c in cores {
                    c.set_dvfs(DvfsLevel::High);
                }
            }
            Scheduler::SelfAware | Scheduler::SupervisedSelfAware => {
                if let Some(s) = &mut self.state {
                    s.govern_dvfs(cores, now);
                }
            }
        }
    }

    /// Chooses a core for `task`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn assign(&mut self, cores: &[Core], task: &Task, rng: &mut Rng) -> usize {
        assert!(!cores.is_empty(), "need at least one core");
        match self.kind {
            Scheduler::StaticPin => {
                let want = match task.class {
                    TaskClass::Compute | TaskClass::Interactive => CoreKind::Big,
                    TaskClass::Memory => CoreKind::Little,
                };
                let matching: Vec<usize> = (0..cores.len())
                    .filter(|&i| cores[i].spec().kind == want)
                    .collect();
                let pool = if matching.is_empty() {
                    (0..cores.len()).collect()
                } else {
                    matching
                };
                let pick = pool[self.rr_next % pool.len()];
                self.rr_next = self.rr_next.wrapping_add(1);
                pick
            }
            Scheduler::Greedy => (0..cores.len())
                .min_by(|&a, &b| {
                    let da = cores[a].backlog() / cores[a].spec().speed;
                    let db = cores[b].backlog() / cores[b].spec().speed;
                    da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty"),
            Scheduler::SelfAware | Scheduler::SupervisedSelfAware => self
                .state
                .as_mut()
                .expect("self-aware state")
                .assign(cores, task, rng),
        }
    }

    /// Reports a completed task's latency so learning schedulers can
    /// compute reward.
    pub fn feedback(&mut self, task: &Task, core: &Core, core_idx: usize, latency: u64) {
        if let Some(s) = &mut self.state {
            s.feedback(task, core, core_idx, latency);
        }
    }

    /// Drift events noticed by the meta level (0 for baselines).
    #[must_use]
    pub fn drift_events(&self) -> u32 {
        self.state.as_ref().map_or(0, |s| s.governor.drift_count())
    }

    /// Corrupts the thermal-forecast bank in place — the injection
    /// point for [`ModelCorruptionKind`] faults. No-op for model-free
    /// baselines.
    pub fn inject_model_corruption(&mut self, kind: ModelCorruptionKind, now: Tick) {
        if let Some(s) = &mut self.state {
            s.inject_model_corruption(kind, now);
        }
    }

    /// Watchdog counters, if this scheduler is supervised.
    #[must_use]
    pub fn supervision_stats(&self) -> Option<SupervisionStats> {
        self.state
            .as_ref()
            .and_then(|s| s.supervision.as_ref())
            .map(|svc| svc.sup.stats())
    }

    /// The supervisor's explanation log, if this scheduler is
    /// supervised.
    #[must_use]
    pub fn explanations(&self) -> Option<&ExplanationLog> {
        self.state
            .as_ref()
            .and_then(|s| s.supervision.as_deref())
            .map(|svc| &svc.log)
    }
}

/// Deadline (ticks) assumed for interactive tasks by the self-aware
/// reward model; matches `MulticoreConfig::standard`.
pub const INTERACTIVE_DEADLINE: u64 = 8;

/// Q-learning state: task class × whether the big cluster is hot.
fn qstate(class: TaskClass, big_hot: bool) -> usize {
    class.index() * 2 + usize::from(big_hot)
}

#[derive(Debug)]
struct SelfAwareSched {
    /// Action space: 0 = route to big cluster, 1 = little cluster.
    q: QLearner,
    temp_forecasts: Vec<Holt>,
    governor: ExplorationGovernor,
    /// Task id → (q-state, action) recorded at assignment time, so
    /// feedback credits the decision that actually routed the task.
    assignments: std::collections::HashMap<u64, (usize, usize)>,
    /// Watchdog over the thermal-forecast bank. When present, the
    /// bank in `sup.model()` replaces `temp_forecasts`.
    supervision: Option<Box<ThermalSupervision>>,
    frozen_until: Option<Tick>,
    /// Set per tick by `govern_dvfs`: true while the supervisor has
    /// benched the forecast bank (reactive DVFS on current temps).
    benched: bool,
}

#[derive(Debug)]
struct ThermalSupervision {
    sup: Supervisor<Vec<Holt>>,
    log: ExplanationLog,
}

impl SelfAwareSched {
    fn new(n_cores: usize) -> Self {
        Self {
            q: QLearner::new(6, 2, 0.15, 0.0, 0.15),
            temp_forecasts: (0..n_cores).map(|_| Holt::new(0.4, 0.2)).collect(),
            governor: ExplorationGovernor::new(0.03, 0.4, 0.998, 0.15, 12.0),
            assignments: std::collections::HashMap::new(),
            supervision: None,
            frozen_until: None,
            benched: false,
        }
    }

    fn supervised(mut self) -> Self {
        let bank = std::mem::take(&mut self.temp_forecasts);
        self.supervision = Some(Box::new(ThermalSupervision {
            sup: Supervisor::new("thermal-forecasts", bank),
            log: ExplanationLog::new(512),
        }));
        self
    }

    fn forecasts(&self) -> &[Holt] {
        match &self.supervision {
            Some(svc) => svc.sup.model(),
            None => &self.temp_forecasts,
        }
    }

    fn inject_model_corruption(&mut self, kind: ModelCorruptionKind, now: Tick) {
        match kind {
            ModelCorruptionKind::StateFreeze { duration } => {
                self.frozen_until = Some(Tick(now.0 + duration));
            }
            _ => {
                let bank = match &mut self.supervision {
                    Some(svc) => svc.sup.model_mut(),
                    None => &mut self.temp_forecasts,
                };
                for model in bank {
                    match kind {
                        ModelCorruptionKind::NanPoison => model.set_state(f64::NAN, f64::NAN),
                        ModelCorruptionKind::WeightScramble { gain } => {
                            let (level, trend) = (model.level(), model.trend());
                            model.set_state(level * gain, -trend * gain - gain);
                        }
                        ModelCorruptionKind::StateFreeze { .. } => unreachable!("handled above"),
                    }
                }
            }
        }
    }

    /// Predicted temperature used for thermal decisions on core `i`:
    /// the model's horizon forecast while trusted, the live sensor
    /// reading while the supervisor has benched the model (or the
    /// forecast is unusable).
    fn predicted_temp(&self, i: usize, current: f64) -> f64 {
        if self.benched {
            return current;
        }
        let predicted = self.forecasts()[i].forecast_h(5).unwrap_or(current);
        if predicted.is_finite() || self.supervision.is_none() {
            predicted
        } else {
            current
        }
    }

    fn big_cluster_hot(&self, cores: &[Core]) -> bool {
        cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.spec().kind == CoreKind::Big)
            .any(|(i, c)| self.predicted_temp(i, c.temperature()) > T_CAP - 8.0)
    }

    fn govern_dvfs(&mut self, cores: &mut [Core], now: Tick) {
        let frozen = self.frozen_until.is_some_and(|until| now.0 < until.0);
        if let Some(svc) = &mut self.supervision {
            // Feed the bank, then hand the supervisor the hottest
            // current reading (input) against the hottest one-step
            // prediction (output): the forecast contract the
            // watchdogs score is "next tick's peak temperature".
            let mut max_temp = f64::NEG_INFINITY;
            let mut max_pred = f64::NEG_INFINITY;
            for (i, core) in cores.iter().enumerate() {
                let temp = core.temperature();
                if !frozen {
                    svc.sup.model_mut()[i].observe(temp);
                }
                let pred = svc.sup.model()[i].forecast_h(1).unwrap_or(temp);
                max_temp = max_temp.max(temp);
                // NaN-propagating max: a poisoned core must not be
                // masked by a healthy hotter one.
                max_pred = if pred.is_nan() {
                    pred
                } else {
                    max_pred.max(pred)
                };
            }
            svc.sup
                .observe(now, Evidence::forecast(max_temp, max_pred), &mut svc.log);
            self.benched = svc.sup.source() == ControlSource::Baseline;
        } else if !frozen {
            for (i, core) in cores.iter().enumerate() {
                self.temp_forecasts[i].observe(core.temperature());
            }
        }
        for (i, core) in cores.iter_mut().enumerate() {
            let predicted = self.predicted_temp(i, core.temperature());
            let level = core.dvfs();
            if predicted > T_CAP - 5.0 {
                core.set_dvfs(level.lower());
            } else if core.queue_len() == 0 {
                // Idle: step down to save energy (one level per tick,
                // so a burst does not land on a cold-clocked core).
                core.set_dvfs(level.lower());
            } else if predicted < T_CAP - 20.0 {
                core.set_dvfs(level.higher());
            }
        }
    }

    fn assign(&mut self, cores: &[Core], task: &Task, rng: &mut Rng) -> usize {
        // Exploration is confined to batch classes: experimenting on
        // latency-critical traffic would spend deadline misses to buy
        // knowledge the batch classes can buy safely.
        let eps = if task.class == TaskClass::Interactive {
            0.0
        } else {
            self.governor.epsilon().clamp(0.0, 1.0)
        };
        self.q.set_epsilon(eps);
        let hot = self.big_cluster_hot(cores);
        let s = qstate(task.class, hot);
        let a = self.q.select(s, rng);
        let want = if a == 0 {
            CoreKind::Big
        } else {
            CoreKind::Little
        };
        // Best core within each cluster by expected wait (backlog +
        // this task, at that cluster's effective speed for the class).
        let best_in = |kind: CoreKind| -> Option<(usize, f64)> {
            (0..cores.len())
                .filter(|&i| cores[i].spec().kind == kind)
                .map(|i| {
                    let speed = cores[i].effective_speed(task.class).max(1e-9);
                    (i, (cores[i].backlog() + task.work) / speed)
                })
                .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap_or(std::cmp::Ordering::Equal))
        };
        let preferred = best_in(want);
        let other_kind = match want {
            CoreKind::Big => CoreKind::Little,
            CoreKind::Little => CoreKind::Big,
        };
        let fallback = best_in(other_kind);
        let (pick, spilled) = match (preferred, fallback) {
            // Spill to the other cluster when the learned preference
            // is overloaded: a single cluster cannot absorb every
            // phase of the workload.
            (Some((_, wp)), Some((f, wf))) if wp > wf + 5.0 => (f, true),
            (Some((p, _)), _) => (p, false),
            (None, Some((f, _))) => (f, true),
            (None, None) => unreachable!("assign requires at least one core"),
        };
        // Only credit the Q table for decisions it actually made.
        if !spilled {
            self.assignments.insert(task.id, (s, a));
        }
        pick
    }

    fn feedback(&mut self, task: &Task, core: &Core, _core_idx: usize, latency: u64) {
        let Some((state, action)) = self.assignments.remove(&task.id) else {
            return; // not one of ours (e.g. pre-warm traffic)
        };
        // Multi-objective reward: fast completion, low energy.
        // Interactive work carries a hard deadline, so lateness there
        // dominates any energy saving.
        let energy_cost = match core.spec().kind {
            CoreKind::Big => 1.0,
            CoreKind::Little => 0.25,
        };
        let latency_cost = match task.class {
            TaskClass::Interactive => {
                if latency > INTERACTIVE_DEADLINE {
                    4.0
                } else {
                    0.0
                }
            }
            TaskClass::Compute | TaskClass::Memory => (latency as f64 / 40.0).min(1.0),
        };
        let reward = 2.0 - latency_cost - energy_cost;
        // γ = 0 → the next-state argument is irrelevant; reuse `state`.
        self.q.update(state, action, reward, state);
        let _ = self.governor.observe_reward(reward);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreSpec;

    fn cores() -> Vec<Core> {
        vec![
            Core::new(CoreSpec::big()),
            Core::new(CoreSpec::big()),
            Core::new(CoreSpec::little()),
            Core::new(CoreSpec::little()),
        ]
    }

    fn task(class: TaskClass) -> Task {
        Task {
            id: 0,
            class,
            work: 2.0,
            arrived: Tick(0),
        }
    }

    fn rng() -> Rng {
        simkernel::SeedTree::new(41).rng("sched")
    }

    #[test]
    fn static_pin_routes_by_design_assumption() {
        let cs = cores();
        let mut ctl = Scheduler::StaticPin.build(4);
        let mut r = rng();
        let c = ctl.assign(&cs, &task(TaskClass::Compute), &mut r);
        assert_eq!(cs[c].spec().kind, CoreKind::Big);
        let m = ctl.assign(&cs, &task(TaskClass::Memory), &mut r);
        assert_eq!(cs[m].spec().kind, CoreKind::Little);
    }

    #[test]
    fn static_pin_round_robins_within_cluster() {
        let cs = cores();
        let mut ctl = Scheduler::StaticPin.build(4);
        let mut r = rng();
        let a = ctl.assign(&cs, &task(TaskClass::Compute), &mut r);
        let b = ctl.assign(&cs, &task(TaskClass::Compute), &mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn greedy_balances_normalised_backlog() {
        let mut cs = cores();
        cs[0].enqueue(task(TaskClass::Compute));
        cs[0].enqueue(task(TaskClass::Compute));
        let mut ctl = Scheduler::Greedy.build(4);
        let mut r = rng();
        let pick = ctl.assign(&cs, &task(TaskClass::Compute), &mut r);
        assert_ne!(pick, 0, "core 0 is loaded");
    }

    #[test]
    fn baselines_hold_full_frequency() {
        let mut cs = cores();
        cs[0].set_dvfs(DvfsLevel::Low);
        let mut ctl = Scheduler::Greedy.build(4);
        ctl.begin_tick(&mut cs, Tick(0));
        assert_eq!(cs[0].dvfs(), DvfsLevel::High);
    }

    #[test]
    fn self_aware_drops_idle_cores_to_low() {
        let mut cs = cores();
        let mut ctl = Scheduler::SelfAware.build(4);
        for t in 0..10u64 {
            ctl.begin_tick(&mut cs, Tick(t));
        }
        for c in &cs {
            assert_eq!(c.dvfs(), DvfsLevel::Low, "idle cores should downclock");
        }
    }

    #[test]
    fn self_aware_learns_memory_to_little() {
        let cs = cores();
        let mut ctl = Scheduler::SelfAware.build(4);
        let mut r = rng();
        // Feed outcomes: memory on big = slow reward; on little = good.
        for _ in 0..600 {
            let pick = ctl.assign(&cs, &task(TaskClass::Memory), &mut r);
            let latency = 2; // same speed either way (memory-bound)
            ctl.feedback(&task(TaskClass::Memory), &cs[pick], pick, latency);
        }
        // After learning, the greedy choice for memory tasks should be
        // the little cluster (same latency, quarter the energy cost).
        let mut little = 0;
        for _ in 0..100 {
            let pick = ctl.assign(&cs, &task(TaskClass::Memory), &mut r);
            if cs[pick].spec().kind == CoreKind::Little {
                little += 1;
            }
            ctl.feedback(&task(TaskClass::Memory), &cs[pick], pick, 2);
        }
        assert!(little > 70, "little cluster chosen {little}/100");
    }

    #[test]
    fn labels() {
        assert_eq!(Scheduler::StaticPin.label(), "static-pin");
        assert_eq!(Scheduler::SelfAware.label(), "self-aware");
    }

    #[test]
    #[should_panic(expected = "need at least one core")]
    fn empty_cores_panics() {
        let mut ctl = Scheduler::Greedy.build(0);
        let mut r = rng();
        let _ = ctl.assign(&[], &task(TaskClass::Compute), &mut r);
    }
}
