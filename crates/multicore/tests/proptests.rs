//! Property-based tests for the multicore platform model.

use multicore::core::{Core, CoreSpec, DvfsLevel, T_AMBIENT, T_CAP};
use proptest::prelude::*;
use simkernel::Tick;
use workloads::tasks::{Task, TaskClass};

fn task(id: u64, class: TaskClass, work: f64) -> Task {
    Task {
        id,
        class,
        work,
        arrived: Tick(0),
    }
}

fn class_strategy() -> impl Strategy<Value = TaskClass> {
    prop_oneof![
        Just(TaskClass::Compute),
        Just(TaskClass::Memory),
        Just(TaskClass::Interactive),
    ]
}

proptest! {
    #[test]
    fn work_is_conserved(
        works in proptest::collection::vec(0.1f64..10.0, 1..30),
        big in any::<bool>(),
        ticks in 1u64..200,
    ) {
        let spec = if big { CoreSpec::big() } else { CoreSpec::little() };
        let mut core = Core::new(spec);
        let total_work: f64 = works.iter().sum();
        for (i, &w) in works.iter().enumerate() {
            core.enqueue(task(i as u64, TaskClass::Compute, w));
        }
        let mut done = 0u64;
        for t in 1..=ticks {
            done += core.step(Tick(t)).len() as u64;
        }
        // Completed + remaining backlog accounts for all queued work.
        prop_assert_eq!(done + core.queue_len() as u64, works.len() as u64);
        // The core can never complete more work than capacity allows.
        let max_speed = spec.speed; // effective speed never exceeds peak
        let completed_work: f64 = total_work - core.backlog();
        prop_assert!(completed_work <= max_speed * ticks as f64 + 1e-6);
    }

    #[test]
    fn temperature_stays_physical(
        n_tasks in 0usize..200,
        ticks in 1u64..400,
        big in any::<bool>(),
    ) {
        let spec = if big { CoreSpec::big() } else { CoreSpec::little() };
        let mut core = Core::new(spec);
        for i in 0..n_tasks {
            core.enqueue(task(i as u64, TaskClass::Compute, 1.0));
        }
        // Physical ceiling: steady state at max power.
        let p_max = spec.power_idle + spec.power_dyn;
        let t_max = T_AMBIENT + p_max * spec.r_th;
        for t in 1..=ticks {
            core.step(Tick(t));
            prop_assert!(core.temperature() >= T_AMBIENT - 1e-9);
            prop_assert!(core.temperature() <= t_max + 1e-6);
        }
    }

    #[test]
    fn energy_is_monotone_and_at_least_idle(
        ticks in 1u64..300,
        load in 0usize..50,
    ) {
        let mut core = Core::new(CoreSpec::little());
        for i in 0..load {
            core.enqueue(task(i as u64, TaskClass::Memory, 2.0));
        }
        let mut prev = 0.0;
        for t in 1..=ticks {
            core.step(Tick(t));
            prop_assert!(core.energy() > prev);
            prev = core.energy();
        }
        prop_assert!(core.energy() >= core.spec().power_idle * ticks as f64 - 1e-9);
    }

    #[test]
    fn effective_speed_monotone_in_dvfs(class in class_strategy(), big in any::<bool>()) {
        let spec = if big { CoreSpec::big() } else { CoreSpec::little() };
        let mut core = Core::new(spec);
        let mut prev = 0.0;
        for level in DvfsLevel::ALL {
            core.set_dvfs(level);
            let s = core.effective_speed(class);
            prop_assert!(s >= prev - 1e-12, "speed must not decrease with frequency");
            prop_assert!(s > 0.0);
            prev = s;
        }
    }

    #[test]
    fn completions_report_positive_latency(
        works in proptest::collection::vec(0.5f64..5.0, 1..20),
    ) {
        let mut core = Core::new(CoreSpec::big());
        for (i, &w) in works.iter().enumerate() {
            core.enqueue(task(i as u64, TaskClass::Interactive, w));
        }
        for t in 1..=100u64 {
            for (_, latency) in core.step(Tick(t)) {
                prop_assert!(latency >= 1);
                prop_assert!(latency <= t);
            }
        }
    }

    #[test]
    fn throttling_only_above_cap(ticks in 1u64..100) {
        let mut core = Core::new(CoreSpec::little());
        // A little core at low utilisation can never approach the cap.
        core.enqueue(task(0, TaskClass::Memory, 1.0));
        for t in 1..=ticks {
            core.step(Tick(t));
        }
        prop_assert!(core.temperature() < T_CAP);
        prop_assert_eq!(core.throttled_ticks(), 0);
    }
}
