//! The supervised autoscaling policy, extracted from the dispatch
//! strategy so it can govern things that are not simulated clusters.
//!
//! [`AutoscaleCore`] is the demand-side half of the self-aware
//! controller in [`crate::strategy`]: a Holt double-exponential
//! arrival forecast (optionally watchdogged by a
//! [`Supervisor`]), an EWMA per-item work estimate, a violation EWMA,
//! and the goal-aware asymmetric safety-margin adaptation. Pool sizing
//! is the classic `ceil(rate · mean_work · safety / capacity)`
//! formula. It is deliberately unit-agnostic: in `cloudsim` a "tick"
//! is a dispatch round and capacity is work-units per node-tick; in
//! `liveserve` a tick is a wall-clock quantum and capacity is 1.0
//! (one handler thread serves one request's worth of work per
//! busy-quantum), so the *same* policy arithmetic sizes a thread pool
//! under live TCP traffic.
//!
//! The extraction is behaviour-preserving: `strategy::SelfAwareState`
//! now delegates here, and the F1–F10 experiment suites (bit-identical
//! parity included) run on top of this code.

use selfaware::explain::ExplanationLog;
use selfaware::models::ewma::Ewma;
use selfaware::models::holt::Holt;
use selfaware::models::{Forecaster, OnlineModel};
use selfaware::replay::InterventionMask;
use selfaware::supervision::{ControlSource, Evidence, SupervisionStats, Supervisor};
use simkernel::Tick;
use workloads::faults::ModelCorruptionKind;

/// Default autoscaling safety margin (headroom multiplier).
pub const SAFETY_DEFAULT: f64 = 1.3;
/// Ceiling on the adaptive safety margin.
pub const SAFETY_MAX: f64 = 3.0;
/// Violation level above which the margin grows (per observation).
pub const VIOLATION_HIGH: f64 = 0.05;
/// Violation level below which the margin decays toward the floor.
pub const VIOLATION_LOW: f64 = 0.01;

/// Watchdog wrapper around the arrival model: the supervised variant
/// learns through `sup.model_mut()`, so checkpoint/rollback and
/// fallback decisions apply to the live model.
struct SupervisedModel {
    sup: Supervisor<Holt>,
    log: ExplanationLog,
}

/// Demand forecasting + safety adaptation + pool sizing, decoupled
/// from what is being scaled.
///
/// # Example
///
/// ```
/// use cloudsim::autoscale::AutoscaleCore;
/// use simkernel::Tick;
///
/// let mut core = AutoscaleCore::new("demo").supervised();
/// for t in 0..50u64 {
///     core.observe_work(2.0);
///     // 6 arrivals/tick, each needing 2 work units, capacity 1 per
///     // worker-tick → wants ceil(6 × 2 × 1.3) = 16 workers.
///     let pool = core.desired_pool(6.0, Tick(t), 1.0, 1, 32);
///     assert!(pool >= 1 && pool <= 32);
/// }
/// assert!(core.safety() >= 1.0);
/// ```
pub struct AutoscaleCore {
    arrival_forecast: Holt,
    work_estimate: Ewma,
    violation_ewma: Ewma,
    safety: f64,
    supervision: Option<Box<SupervisedModel>>,
    frozen_until: Option<Tick>,
}

impl AutoscaleCore {
    /// Creates an unsupervised core; `name` labels the supervisor if
    /// [`AutoscaleCore::supervised`] is applied.
    #[must_use]
    pub fn new(name: &str) -> Self {
        let _ = name; // kept for symmetry; supervised() names the watchdog
        Self {
            arrival_forecast: Holt::new(0.2, 0.05),
            work_estimate: Ewma::new(0.05),
            violation_ewma: Ewma::new(0.05),
            safety: SAFETY_DEFAULT,
            supervision: None,
            frozen_until: None,
        }
    }

    /// Wraps the arrival model in a meta-self-aware [`Supervisor`]
    /// (NaN/divergence/oscillation/stall watchdog with checkpoint →
    /// rollback → reactive-fallback ladder).
    #[must_use]
    pub fn supervised(mut self) -> Self {
        self.supervision = Some(Box::new(SupervisedModel {
            sup: Supervisor::new("cloud-arrivals", Holt::new(0.2, 0.05)),
            log: ExplanationLog::new(512),
        }));
        self
    }

    /// Applies a counterfactual intervention mask to the supervisor
    /// (no-op when unsupervised). Masked paths consume no randomness.
    pub fn set_mask(&mut self, mask: InterventionMask) {
        if let Some(svc) = &mut self.supervision {
            svc.sup.set_mask(mask);
        }
    }

    /// Feeds one item's work size into the per-item work estimate.
    pub fn observe_work(&mut self, work: f64) {
        self.work_estimate.observe(work);
    }

    /// Feeds one terminal outcome into the violation EWMA.
    pub fn observe_outcome(&mut self, violated: bool) {
        self.violation_ewma
            .observe(if violated { 1.0 } else { 0.0 });
    }

    /// Current smoothed violation level.
    #[must_use]
    pub fn violation_level(&self) -> f64 {
        self.violation_ewma.level()
    }

    /// Current safety margin.
    #[must_use]
    pub fn safety(&self) -> f64 {
        self.safety
    }

    /// Forces the safety margin to at least `floor` (the meta level's
    /// drift reaction uses this to buy headroom after a regime change).
    pub fn raise_safety_floor(&mut self, floor: f64) {
        self.safety = self.safety.max(floor).min(SAFETY_MAX);
    }

    /// Freezes the arrival model until `until` (the `StateFreeze`
    /// model-corruption fault).
    pub fn freeze_until(&mut self, until: Tick) {
        self.frozen_until = Some(until);
    }

    /// Corrupts the learned arrival model in place — the injection
    /// point for [`ModelCorruptionKind`] faults.
    pub fn inject_model_corruption(&mut self, kind: ModelCorruptionKind, now: Tick) {
        match kind {
            ModelCorruptionKind::StateFreeze { duration } => {
                self.frozen_until = Some(Tick(now.0 + duration));
            }
            _ => {
                let model = match &mut self.supervision {
                    Some(svc) => svc.sup.model_mut(),
                    None => &mut self.arrival_forecast,
                };
                match kind {
                    ModelCorruptionKind::NanPoison => model.set_state(f64::NAN, f64::NAN),
                    ModelCorruptionKind::WeightScramble { gain } => {
                        let (level, trend) = (model.level(), model.trend());
                        model.set_state(level * gain, -trend * gain - gain);
                    }
                    ModelCorruptionKind::StateFreeze { .. } => unreachable!("handled above"),
                }
            }
        }
    }

    /// Observes the tick's arrivals into the (possibly supervised)
    /// model and returns the demand-rate estimate to autoscale on.
    ///
    /// Supervised cores that are benched (rolled back / fallen back)
    /// provision reactively on the raw arrival stimulus instead of the
    /// diverged forecast.
    pub fn demand_rate(&mut self, arrivals: f64, now: Tick) -> f64 {
        let frozen = self.frozen_until.is_some_and(|until| now.0 < until.0);
        match &mut self.supervision {
            Some(svc) => {
                if !frozen {
                    svc.sup.model_mut().observe(arrivals);
                }
                let out = svc.sup.model().forecast_h(1).unwrap_or(arrivals);
                svc.sup
                    .observe(now, Evidence::forecast(arrivals, out), &mut svc.log);
                let forecast = svc.sup.model().forecast_h(5).unwrap_or(arrivals);
                if svc.sup.source() == ControlSource::Model && forecast.is_finite() {
                    forecast
                } else {
                    // Benched: fall back to reactive provisioning on
                    // the raw arrival stimulus.
                    arrivals
                }
            }
            None => {
                if !frozen {
                    self.arrival_forecast.observe(arrivals);
                }
                self.arrival_forecast.forecast_h(5).unwrap_or(arrivals)
            }
        }
    }

    /// Goal-aware safety adaptation: asymmetric — react fast to rising
    /// violations (SLA risk is expensive), relax only very slowly
    /// (cost is cheap per tick), which keeps the adaptation from
    /// oscillating between under- and over-provisioning.
    pub fn adapt_safety(&mut self) {
        let v = self.violation_ewma.level();
        if v > VIOLATION_HIGH {
            self.safety = (self.safety * 1.03).min(SAFETY_MAX);
        } else if v < VIOLATION_LOW {
            self.safety = (self.safety * 0.9995).max(SAFETY_DEFAULT);
        }
    }

    /// Mean per-item work estimate, with `default` before any data.
    #[must_use]
    pub fn mean_work(&self, default: f64) -> f64 {
        self.work_estimate.forecast().unwrap_or(default)
    }

    /// Observes arrivals, adapts the margin, and returns the pool size
    /// the policy wants: `ceil(rate · mean_work · safety / mean_cap)`
    /// clamped to `[min, max]`.
    ///
    /// `mean_cap` is the work one pool slot retires per tick (cluster
    /// node capacity in cloudsim, 1.0 for a live handler thread).
    pub fn desired_pool(
        &mut self,
        arrivals: f64,
        now: Tick,
        mean_cap: f64,
        min: usize,
        max: usize,
    ) -> usize {
        let rate = self.demand_rate(arrivals, now).max(0.0);
        self.adapt_safety();
        let mean_work = self.mean_work(3.0);
        let needed = ((rate * mean_work * self.safety) / mean_cap.max(f64::MIN_POSITIVE)).ceil();
        let needed = if needed.is_finite() && needed >= 0.0 {
            needed as usize
        } else {
            max
        };
        needed.clamp(min, max)
    }

    /// Watchdog counters, if supervised.
    #[must_use]
    pub fn supervision_stats(&self) -> Option<SupervisionStats> {
        self.supervision.as_ref().map(|svc| svc.sup.stats())
    }

    /// The supervisor's explanation log, if supervised.
    #[must_use]
    pub fn explanations(&self) -> Option<&ExplanationLog> {
        self.supervision.as_deref().map(|svc| &svc.log)
    }

    /// Which model currently drives autoscaling, if supervised.
    #[must_use]
    pub fn control_source(&self) -> Option<ControlSource> {
        self.supervision.as_ref().map(|svc| svc.sup.source())
    }
}

impl std::fmt::Debug for AutoscaleCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutoscaleCore")
            .field("safety", &self.safety)
            .field("supervised", &self.supervision.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_tracks_demand() {
        let mut core = AutoscaleCore::new("t");
        for _ in 0..100 {
            core.observe_work(2.0);
        }
        let mut last = 0;
        for t in 0..100u64 {
            last = core.desired_pool(8.0, Tick(t), 1.0, 1, 64);
        }
        // 8/tick × 2 work × 1.3 safety ≈ 21 slots.
        assert!((18..=24).contains(&last), "pool {last}");
    }

    #[test]
    fn safety_rises_under_violations_and_floors_at_default() {
        let mut core = AutoscaleCore::new("t");
        for _ in 0..200 {
            core.observe_outcome(true);
            core.adapt_safety();
        }
        assert!(core.safety() > SAFETY_DEFAULT);
        assert!(core.safety() <= SAFETY_MAX);
        for _ in 0..20000 {
            core.observe_outcome(false);
            core.adapt_safety();
        }
        assert!((core.safety() - SAFETY_DEFAULT).abs() < 1e-9);
    }

    #[test]
    fn supervised_core_survives_nan_poison() {
        let mut core = AutoscaleCore::new("t").supervised();
        for t in 0..50u64 {
            core.demand_rate(5.0, Tick(t));
        }
        core.inject_model_corruption(ModelCorruptionKind::NanPoison, Tick(50));
        let mut rate = f64::NAN;
        for t in 50..120u64 {
            rate = core.demand_rate(5.0, Tick(t));
        }
        assert!(rate.is_finite(), "supervised rate must recover: {rate}");
        let stats = core.supervision_stats().expect("supervised");
        assert!(stats.warns + stats.rollbacks + stats.fallbacks > 0);
    }

    #[test]
    fn unsupervised_freeze_holds_model() {
        let mut core = AutoscaleCore::new("t");
        for t in 0..30u64 {
            core.demand_rate(4.0, Tick(t));
        }
        let before = core.demand_rate(4.0, Tick(30));
        core.freeze_until(Tick(100));
        for t in 31..60u64 {
            core.demand_rate(40.0, Tick(t)); // ignored while frozen
        }
        let during = core.demand_rate(40.0, Tick(60));
        assert!((during - before).abs() < 1.0, "frozen model must not learn");
    }

    #[test]
    fn degenerate_pool_inputs_clamp() {
        let mut core = AutoscaleCore::new("t");
        let p = core.desired_pool(f64::INFINITY, Tick(0), 1.0, 2, 8);
        assert!((2..=8).contains(&p));
        let p = core.desired_pool(0.0, Tick(1), 0.0, 2, 8);
        assert!((2..=8).contains(&p));
    }
}
