//! Request lifecycle and SLA accounting.

use serde::{Deserialize, Serialize};
use simkernel::Tick;

/// A unit of demand submitted to the cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Monotone id.
    pub id: u64,
    /// Service demand in work units (on a unit-capacity node this
    /// takes `work` ticks).
    pub work: f64,
    /// Arrival time.
    pub arrived: Tick,
    /// SLA deadline: the response time (completion − arrival) must not
    /// exceed this many ticks.
    pub deadline: u64,
}

impl Request {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `work <= 0` or `deadline == 0`.
    #[must_use]
    pub fn new(id: u64, work: f64, arrived: Tick, deadline: u64) -> Self {
        assert!(work > 0.0, "work must be positive");
        assert!(deadline > 0, "deadline must be positive");
        Self {
            id,
            work,
            arrived,
            deadline,
        }
    }
}

/// Terminal outcome of a request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// Finished; `latency` is the response time in ticks.
    Completed {
        /// The request.
        request: Request,
        /// Completion time.
        at: Tick,
        /// Node that served it.
        node: usize,
        /// Response time in ticks.
        latency: u64,
    },
    /// Lost to a node failure or node going offline mid-service.
    Failed {
        /// The request.
        request: Request,
        /// Failure time.
        at: Tick,
        /// Node that lost it.
        node: usize,
    },
    /// No eligible node at dispatch time.
    Rejected {
        /// The request.
        request: Request,
        /// Rejection time.
        at: Tick,
    },
}

impl RequestOutcome {
    /// The request this outcome concerns.
    #[must_use]
    pub fn request(&self) -> &Request {
        match self {
            RequestOutcome::Completed { request, .. }
            | RequestOutcome::Failed { request, .. }
            | RequestOutcome::Rejected { request, .. } => request,
        }
    }

    /// Whether the outcome violates the SLA (failed, rejected, or late).
    #[must_use]
    pub fn violates_sla(&self) -> bool {
        match self {
            RequestOutcome::Completed {
                request, latency, ..
            } => *latency > request.deadline,
            RequestOutcome::Failed { .. } | RequestOutcome::Rejected { .. } => true,
        }
    }

    /// Whether the request completed (regardless of lateness).
    #[must_use]
    pub fn completed(&self) -> bool {
        matches!(self, RequestOutcome::Completed { .. })
    }

    /// Response latency, if completed.
    #[must_use]
    pub fn latency(&self) -> Option<u64> {
        match self {
            RequestOutcome::Completed { latency, .. } => Some(*latency),
            _ => None,
        }
    }

    /// The node involved, if any.
    #[must_use]
    pub fn node(&self) -> Option<usize> {
        match self {
            RequestOutcome::Completed { node, .. } | RequestOutcome::Failed { node, .. } => {
                Some(*node)
            }
            RequestOutcome::Rejected { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request::new(1, 5.0, Tick(10), 20)
    }

    #[test]
    fn completed_on_time_meets_sla() {
        let o = RequestOutcome::Completed {
            request: req(),
            at: Tick(25),
            node: 2,
            latency: 15,
        };
        assert!(!o.violates_sla());
        assert!(o.completed());
        assert_eq!(o.latency(), Some(15));
        assert_eq!(o.node(), Some(2));
        assert_eq!(o.request().id, 1);
    }

    #[test]
    fn late_completion_violates() {
        let o = RequestOutcome::Completed {
            request: req(),
            at: Tick(40),
            node: 0,
            latency: 30,
        };
        assert!(o.violates_sla());
        assert!(o.completed());
    }

    #[test]
    fn failed_and_rejected_violate() {
        let f = RequestOutcome::Failed {
            request: req(),
            at: Tick(12),
            node: 1,
        };
        let r = RequestOutcome::Rejected {
            request: req(),
            at: Tick(10),
        };
        assert!(f.violates_sla() && r.violates_sla());
        assert!(!f.completed() && !r.completed());
        assert_eq!(f.latency(), None);
        assert_eq!(r.node(), None);
    }

    #[test]
    #[should_panic(expected = "work must be positive")]
    fn zero_work_panics() {
        let _ = Request::new(0, 0.0, Tick(0), 10);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_panics() {
        let _ = Request::new(0, 1.0, Tick(0), 0);
    }
}
