//! Worker nodes: heterogeneous, unreliable, churning.
//!
//! A volunteer node (paper refs 14, 15) differs from a datacenter
//! machine in three ways this model captures: capacity varies widely
//! across nodes (heterogeneity), a node may silently lose work
//! (unreliability), and nodes come and go on their own schedule
//! (churn, modelled as a two-state Markov process).

use crate::request::{Request, RequestOutcome};
use rand::Rng as _;
use serde::{Deserialize, Serialize};
use simkernel::rng::Rng;
use simkernel::Tick;
use std::collections::VecDeque;

/// Static description of a node (the "design-time" view).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Work units processed per tick while online.
    pub capacity: f64,
    /// Probability per busy tick of losing the in-service request.
    pub failure_prob: f64,
    /// Probability per tick of going offline while online.
    pub churn_off: f64,
    /// Probability per tick of coming back while offline.
    pub churn_on: f64,
}

impl NodeSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `capacity <= 0` or any probability is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(capacity: f64, failure_prob: f64, churn_off: f64, churn_on: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive");
        for (name, p) in [
            ("failure_prob", failure_prob),
            ("churn_off", churn_off),
            ("churn_on", churn_on),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1]");
        }
        Self {
            capacity,
            failure_prob,
            churn_off,
            churn_on,
        }
    }

    /// A reliable datacenter-grade node.
    #[must_use]
    pub fn reliable(capacity: f64) -> Self {
        Self::new(capacity, 0.0005, 0.0005, 0.2)
    }

    /// A flaky volunteer node.
    #[must_use]
    pub fn volunteer(capacity: f64) -> Self {
        Self::new(capacity, 0.01, 0.01, 0.05)
    }
}

/// Why an enqueue was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The node is offline; the request was not accepted.
    NodeOffline,
}

impl std::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnqueueError::NodeOffline => write!(f, "cannot enqueue on an offline node"),
        }
    }
}

impl std::error::Error for EnqueueError {}

/// A live node: spec + queue + online state.
#[derive(Debug, Clone)]
pub struct Node {
    spec: NodeSpec,
    online: bool,
    queue: VecDeque<(Request, f64)>, // (request, remaining work)
    completed: u64,
    lost: u64,
    /// When set, the node is pinned offline by an injected fault until
    /// this tick; stochastic churn cannot bring it back early.
    forced_until: Option<Tick>,
}

impl Node {
    /// Creates an online, idle node.
    #[must_use]
    pub fn new(spec: NodeSpec) -> Self {
        Self {
            spec,
            online: true,
            queue: VecDeque::new(),
            completed: 0,
            lost: 0,
            forced_until: None,
        }
    }

    /// The node's static spec.
    #[must_use]
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Whether the node is currently online.
    #[must_use]
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Queue length (including the in-service request).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Total queued work remaining, in work units.
    #[must_use]
    pub fn backlog(&self) -> f64 {
        self.queue.iter().map(|(_, w)| w).sum()
    }

    /// Estimated ticks to drain the backlog at full capacity.
    #[must_use]
    pub fn drain_time(&self) -> f64 {
        self.backlog() / self.spec.capacity
    }

    /// Lifetime completions.
    #[must_use]
    pub fn completed_count(&self) -> u64 {
        self.completed
    }

    /// Lifetime losses (failures + churn drops).
    #[must_use]
    pub fn lost_count(&self) -> u64 {
        self.lost
    }

    /// Enqueues a request. Fails with [`EnqueueError::NodeOffline`]
    /// (leaving the request unaccepted, to be retried or counted lost
    /// by the caller) if the node is offline — dispatchers should not
    /// route to offline nodes; stimulus-unaware baselines that cannot
    /// see node state and want offline submissions to *lose* the
    /// request should call [`Node::enqueue_blind`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`EnqueueError::NodeOffline`] if the node is offline.
    pub fn enqueue(&mut self, req: Request) -> Result<(), EnqueueError> {
        if !self.online {
            return Err(EnqueueError::NodeOffline);
        }
        self.queue.push_back((req, req.work));
        Ok(())
    }

    /// Enqueues without checking liveness: if the node is offline the
    /// request is immediately lost. Returns the failure outcome in
    /// that case.
    pub fn enqueue_blind(
        &mut self,
        req: Request,
        now: Tick,
        node_id: usize,
    ) -> Option<RequestOutcome> {
        if self.online {
            self.queue.push_back((req, req.work));
            None
        } else {
            self.lost += 1;
            Some(RequestOutcome::Failed {
                request: req,
                at: now,
                node: node_id,
            })
        }
    }

    /// Pins the node offline until `until` (an injected outage, e.g. a
    /// zone failure): the queue is dropped and the losses returned,
    /// and stochastic churn cannot bring the node back before `until`.
    /// At `until` the node deterministically comes back online —
    /// forced outages have a known repair time, unlike churn.
    pub fn force_offline(&mut self, now: Tick, node_id: usize, until: Tick) -> Vec<RequestOutcome> {
        self.online = false;
        self.forced_until = Some(until);
        self.queue
            .drain(..)
            .map(|(request, _)| {
                self.lost += 1;
                RequestOutcome::Failed {
                    request,
                    at: now,
                    node: node_id,
                }
            })
            .collect()
    }

    /// Advances churn state; if the node goes offline, its queue is
    /// dropped and the losses are returned.
    pub fn churn_step(&mut self, now: Tick, node_id: usize, rng: &mut Rng) -> Vec<RequestOutcome> {
        let mut out = Vec::new();
        self.churn_step_into(now, node_id, rng, &mut out);
        out
    }

    /// [`Node::churn_step`] appending losses into `out` instead of
    /// allocating a fresh vector — the cluster tick loop reuses one
    /// outcome buffer across every node.
    pub fn churn_step_into(
        &mut self,
        now: Tick,
        node_id: usize,
        rng: &mut Rng,
        out: &mut Vec<RequestOutcome>,
    ) {
        // A forced outage overrides stochastic churn entirely.
        if let Some(until) = self.forced_until {
            if now < until {
                return;
            }
            self.forced_until = None;
            self.online = true;
            return;
        }
        if self.online {
            if rng.gen::<f64>() < self.spec.churn_off {
                self.online = false;
                while let Some((request, _)) = self.queue.pop_front() {
                    self.lost += 1;
                    out.push(RequestOutcome::Failed {
                        request,
                        at: now,
                        node: node_id,
                    });
                }
            }
        } else if rng.gen::<f64>() < self.spec.churn_on {
            self.online = true;
        }
    }

    /// Processes one tick of work; returns completions and failures.
    pub fn process_step(
        &mut self,
        now: Tick,
        node_id: usize,
        rng: &mut Rng,
    ) -> Vec<RequestOutcome> {
        let mut out = Vec::new();
        self.process_step_into(now, node_id, rng, &mut out);
        out
    }

    /// [`Node::process_step`] appending outcomes into `out` instead of
    /// allocating a fresh vector per node per tick.
    pub fn process_step_into(
        &mut self,
        now: Tick,
        node_id: usize,
        rng: &mut Rng,
        out: &mut Vec<RequestOutcome>,
    ) {
        if !self.online || self.queue.is_empty() {
            return;
        }
        // Per-busy-tick failure of the head-of-line request.
        if rng.gen::<f64>() < self.spec.failure_prob {
            if let Some((request, _)) = self.queue.pop_front() {
                self.lost += 1;
                out.push(RequestOutcome::Failed {
                    request,
                    at: now,
                    node: node_id,
                });
            }
        }
        let mut budget = self.spec.capacity;
        while budget > 0.0 {
            let Some((req, remaining)) = self.queue.front_mut() else {
                break;
            };
            if *remaining <= budget {
                budget -= *remaining;
                let request = *req;
                self.queue.pop_front();
                self.completed += 1;
                let latency = now.value().saturating_sub(request.arrived.value()).max(1);
                out.push(RequestOutcome::Completed {
                    request,
                    at: now,
                    node: node_id,
                    latency,
                });
            } else {
                *remaining -= budget;
                budget = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::SeedTree;

    fn rng() -> Rng {
        SeedTree::new(13).rng("node")
    }

    fn stable_spec() -> NodeSpec {
        NodeSpec::new(2.0, 0.0, 0.0, 1.0)
    }

    #[test]
    fn processes_fifo_and_completes() {
        let mut n = Node::new(stable_spec());
        let mut r = rng();
        n.enqueue(Request::new(0, 3.0, Tick(0), 100)).unwrap();
        n.enqueue(Request::new(1, 1.0, Tick(0), 100)).unwrap();
        // Tick 1: capacity 2 → req0 has 1 left.
        let o1 = n.process_step(Tick(1), 0, &mut r);
        assert!(o1.is_empty());
        // Tick 2: finishes req0 (1 unit) and req1 (1 unit).
        let o2 = n.process_step(Tick(2), 0, &mut r);
        assert_eq!(o2.len(), 2);
        assert_eq!(o2[0].request().id, 0);
        assert_eq!(o2[1].request().id, 1);
        assert_eq!(n.completed_count(), 2);
        assert_eq!(n.queue_len(), 0);
    }

    #[test]
    fn latency_accounts_queueing() {
        let mut n = Node::new(NodeSpec::new(1.0, 0.0, 0.0, 1.0));
        let mut r = rng();
        n.enqueue(Request::new(0, 5.0, Tick(0), 100)).unwrap();
        let mut done = None;
        for t in 1..=10u64 {
            for o in n.process_step(Tick(t), 0, &mut r) {
                done = o.latency();
            }
        }
        assert_eq!(done, Some(5));
    }

    #[test]
    fn backlog_and_drain_time() {
        let mut n = Node::new(stable_spec());
        n.enqueue(Request::new(0, 4.0, Tick(0), 10)).unwrap();
        n.enqueue(Request::new(1, 2.0, Tick(0), 10)).unwrap();
        assert!((n.backlog() - 6.0).abs() < 1e-12);
        assert!((n.drain_time() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn failures_lose_requests() {
        let spec = NodeSpec::new(1.0, 1.0, 0.0, 1.0); // always fails
        let mut n = Node::new(spec);
        let mut r = rng();
        n.enqueue(Request::new(0, 5.0, Tick(0), 10)).unwrap();
        let o = n.process_step(Tick(1), 3, &mut r);
        assert!(matches!(o[0], RequestOutcome::Failed { node: 3, .. }));
        assert_eq!(n.lost_count(), 1);
    }

    #[test]
    fn churn_drops_queue() {
        let spec = NodeSpec::new(1.0, 0.0, 1.0, 0.0); // goes offline immediately
        let mut n = Node::new(spec);
        let mut r = rng();
        n.enqueue(Request::new(0, 5.0, Tick(0), 10)).unwrap();
        n.enqueue(Request::new(1, 5.0, Tick(0), 10)).unwrap();
        let dropped = n.churn_step(Tick(1), 0, &mut r);
        assert_eq!(dropped.len(), 2);
        assert!(!n.is_online());
        assert_eq!(n.queue_len(), 0);
        // Offline node does not process.
        assert!(n.process_step(Tick(2), 0, &mut r).is_empty());
    }

    #[test]
    fn churn_recovers() {
        let spec = NodeSpec::new(1.0, 0.0, 1.0, 1.0);
        let mut n = Node::new(spec);
        let mut r = rng();
        n.churn_step(Tick(1), 0, &mut r); // offline
        assert!(!n.is_online());
        n.churn_step(Tick(2), 0, &mut r); // back on
        assert!(n.is_online());
    }

    #[test]
    fn enqueue_blind_on_offline_fails() {
        let spec = NodeSpec::new(1.0, 0.0, 1.0, 0.0);
        let mut n = Node::new(spec);
        let mut r = rng();
        n.churn_step(Tick(0), 0, &mut r);
        let out = n.enqueue_blind(Request::new(0, 1.0, Tick(0), 5), Tick(0), 7);
        assert!(matches!(out, Some(RequestOutcome::Failed { node: 7, .. })));
    }

    #[test]
    fn enqueue_offline_is_a_typed_error() {
        let spec = NodeSpec::new(1.0, 0.0, 1.0, 0.0);
        let mut n = Node::new(spec);
        let mut r = rng();
        n.churn_step(Tick(0), 0, &mut r);
        let err = n
            .enqueue(Request::new(0, 1.0, Tick(0), 5))
            .expect_err("offline node must refuse");
        assert_eq!(err, EnqueueError::NodeOffline);
        assert_eq!(err.to_string(), "cannot enqueue on an offline node");
        assert_eq!(n.queue_len(), 0, "request was not accepted");
        assert_eq!(n.lost_count(), 0, "refusal is not a loss");
    }

    #[test]
    fn force_offline_pins_through_churn_then_restores() {
        // churn_on = 1.0: stochastic churn would resurrect instantly.
        let spec = NodeSpec::new(1.0, 0.0, 0.0, 1.0);
        let mut n = Node::new(spec);
        let mut r = rng();
        n.enqueue(Request::new(0, 5.0, Tick(0), 10)).unwrap();
        let dropped = n.force_offline(Tick(10), 3, Tick(14));
        assert_eq!(dropped.len(), 1);
        assert!(matches!(dropped[0], RequestOutcome::Failed { node: 3, .. }));
        assert!(!n.is_online());
        for t in 11..14u64 {
            n.churn_step(Tick(t), 3, &mut r);
            assert!(!n.is_online(), "pinned at t={t} despite churn_on=1");
        }
        n.churn_step(Tick(14), 3, &mut r);
        assert!(n.is_online(), "deterministic repair at the deadline");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bad_capacity_panics() {
        let _ = NodeSpec::new(0.0, 0.0, 0.0, 0.0);
    }

    #[test]
    fn preset_specs_are_valid() {
        let r = NodeSpec::reliable(4.0);
        let v = NodeSpec::volunteer(1.0);
        assert!(r.failure_prob < v.failure_prob);
        assert!(r.churn_off < v.churn_off);
    }
}
