//! # cloudsim — a volunteer-cloud simulator
//!
//! The paper's running cloud example (Sections II–III, refs 14, 15,
//! 56, 58): a service built on *volunteered, unreliable, churning*
//! resources must meet quality-of-service goals while controlling
//! cost, under demand that drifts and cycles. This crate provides:
//!
//! * [`node`] — heterogeneous worker nodes with capacity, per-tick
//!   failure probability, and on/off churn;
//! * [`request`] — the request lifecycle and SLA accounting;
//! * [`cluster`] — the node pool: churn, dispatch, processing;
//! * [`strategy`] — dispatchers and autoscalers, from the
//!   non-self-aware baselines (random, round-robin, least-loaded,
//!   design-time-ranked) to the level-gated self-aware controller used
//!   by the T2 ablation;
//! * [`sim`] — the end-to-end scenario runner producing the metrics
//!   reported in T1/T2/F4.
//!
//! The central trade-off (paper Section I: evaluation "must inherently
//! be multi-objective") is throughput vs SLA violations vs rented
//! capacity cost.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::panic)]
#![warn(missing_docs)]

pub mod autoscale;
pub mod cluster;
pub mod des;
pub mod node;
pub mod request;
pub mod sim;
pub mod strategy;

pub use autoscale::AutoscaleCore;
pub use cluster::Cluster;
pub use des::{run_des_cloud, DesCloudConfig, DesCloudResult};
pub use node::{EnqueueError, Node, NodeSpec};
pub use request::{Request, RequestOutcome};
pub use sim::{run_scenario, CommandPlane, ScenarioConfig, ScenarioResult};
pub use strategy::Strategy;
