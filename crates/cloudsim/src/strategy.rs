//! Dispatch/autoscale strategies: the baselines and the level-gated
//! self-aware controller.
//!
//! The T2 ablation ladder follows the paper's levels (Section IV):
//!
//! | levels | behaviour added |
//! |---|---|
//! | ∅ (pre-self-aware) | blind round-robin over rented nodes, full pool always rented |
//! | +stimulus | sees node liveness & queues: least-drain dispatch among online nodes |
//! | +time | learns per-node success history; forecasts demand and autoscales the rented pool |
//! | +goal | adapts the autoscaling safety margin at run time by trading SLA risk against rental cost |
//! | +meta | watches its own violation stream for drift; on drift, boosts exploration and softens stale node beliefs |
//!
//! The non-self-aware baselines ([`Strategy::Random`],
//! [`Strategy::RoundRobin`], [`Strategy::LeastLoaded`],
//! [`Strategy::StaticRanked`]) bracket the comparison in T1 and F4.

use crate::autoscale::AutoscaleCore;
use crate::cluster::Cluster;
use crate::request::{Request, RequestOutcome};
use rand::Rng as _;
use selfaware::explain::ExplanationLog;
use selfaware::levels::{Level, LevelSet};
use selfaware::models::drift::{DriftDetector, PageHinkley};
use selfaware::models::ewma::Ewma;
use selfaware::models::OnlineModel;
use selfaware::replay::InterventionMask;
use selfaware::supervision::{ControlSource, SupervisionStats};
use simkernel::rng::Rng;
use simkernel::Tick;
use workloads::faults::ModelCorruptionKind;

/// Strategy selector for scenario configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum Strategy {
    /// Uniform random node among rented (blind to liveness).
    Random,
    /// Cycle through rented nodes (blind to liveness).
    RoundRobin,
    /// Minimum drain-time among online rented nodes (reactive,
    /// instantaneous knowledge, no learning, no autoscaling).
    LeastLoaded,
    /// Smooth weighted round-robin over the *design-time believed*
    /// node capacities (used in F4: a perfectly sensible classic load
    /// balancer whose weights never update as the world diverges from
    /// the design document).
    StaticRanked {
        /// Believed capacity per node, fixed at design time.
        believed_capacity: Vec<f64>,
    },
    /// The level-gated self-aware controller.
    SelfAware {
        /// Possessed self-awareness levels.
        levels: LevelSet,
    },
    /// The self-aware controller with a meta-self-aware
    /// [`Supervisor`] watchdogging its arrival model: non-finite /
    /// divergence / oscillation / stall detection, checkpoint
    /// rollback, and a reactive-dispatch fallback while the model is
    /// benched.
    SupervisedSelfAware {
        /// Possessed self-awareness levels.
        levels: LevelSet,
    },
}

impl Strategy {
    /// Short table label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Strategy::Random => "random".into(),
            Strategy::RoundRobin => "round-robin".into(),
            Strategy::LeastLoaded => "least-loaded".into(),
            Strategy::StaticRanked { .. } => "static-ranked".into(),
            Strategy::SelfAware { levels } => format!("self-aware[{levels}]"),
            Strategy::SupervisedSelfAware { levels } => format!("supervised[{levels}]"),
        }
    }

    /// Instantiates the runtime controller for a cluster of `n` nodes.
    #[must_use]
    pub fn build(&self, n: usize) -> Controller {
        let kind = match self {
            Strategy::Random => Kind::Random,
            Strategy::RoundRobin => Kind::RoundRobin { next: 0 },
            Strategy::LeastLoaded => Kind::LeastLoaded,
            Strategy::StaticRanked { believed_capacity } => {
                assert_eq!(
                    believed_capacity.len(),
                    n,
                    "believed capacity vector must match node count"
                );
                Kind::StaticRanked {
                    believed: believed_capacity.clone(),
                    credits: vec![0.0; n],
                }
            }
            Strategy::SelfAware { levels } => {
                Kind::SelfAware(Box::new(SelfAwareState::new(*levels, n)))
            }
            Strategy::SupervisedSelfAware { levels } => {
                Kind::SelfAware(Box::new(SelfAwareState::new(*levels, n).supervised()))
            }
        };
        Controller { kind }
    }
}

enum Kind {
    Random,
    RoundRobin {
        next: usize,
    },
    LeastLoaded,
    StaticRanked {
        believed: Vec<f64>,
        credits: Vec<f64>,
    },
    SelfAware(Box<SelfAwareState>),
}

/// Runtime dispatch/autoscale controller.
pub struct Controller {
    kind: Kind,
}

impl Controller {
    /// Applies a counterfactual intervention mask to the arrival-model
    /// supervisor (no-op for unsupervised strategies). Masked paths
    /// consume no randomness, so this never perturbs seed streams.
    pub fn set_mask(&mut self, mask: InterventionMask) {
        if let Kind::SelfAware(state) = &mut self.kind {
            state.core.set_mask(mask);
        }
    }

    /// Called once per tick before dispatching, with the number of
    /// arrivals observed this tick. Autoscaling strategies resize the
    /// rented pool here.
    pub fn begin_tick(&mut self, cluster: &mut Cluster, arrivals: u32, now: Tick, rng: &mut Rng) {
        let _ = rng; // reserved for stochastic autoscalers
        if let Kind::SelfAware(state) = &mut self.kind {
            if let Some(target) = state.desired_pool(cluster, arrivals, now) {
                cluster.rent_first(target);
            }
        }
    }

    /// Computes this tick's autoscaling target *without* applying it —
    /// the hook for a remote command plane that must ship the decision
    /// to zone agents over an unreliable channel instead of flipping
    /// rental flags directly. Observes `arrivals` into the demand
    /// model exactly as [`Controller::begin_tick`] does, so exactly
    /// one of the two must be called per tick. `None` means this
    /// strategy never autoscales.
    pub fn desired_pool(&mut self, cluster: &Cluster, arrivals: u32, now: Tick) -> Option<usize> {
        match &mut self.kind {
            Kind::SelfAware(state) => state.desired_pool(cluster, arrivals, now),
            _ => None,
        }
    }

    /// Chooses a node for `req`; `None` means reject.
    pub fn dispatch(&mut self, cluster: &Cluster, req: &Request, rng: &mut Rng) -> Option<usize> {
        match &mut self.kind {
            Kind::Random => {
                let rented = cluster.rented_indices();
                (!rented.is_empty()).then(|| rented[rng.gen_range(0..rented.len())])
            }
            Kind::RoundRobin { next } => {
                let rented = cluster.rented_indices();
                if rented.is_empty() {
                    return None;
                }
                let pick = rented[*next % rented.len()];
                *next = (*next + 1) % rented.len();
                Some(pick)
            }
            Kind::LeastLoaded => {
                let online = cluster.dispatchable();
                online.into_iter().min_by(|&a, &b| {
                    cluster
                        .node(a)
                        .drain_time()
                        .partial_cmp(&cluster.node(b).drain_time())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
            }
            Kind::StaticRanked { believed, credits } => {
                // Smooth weighted round-robin: each node accrues
                // credit proportional to its *believed* capacity; the
                // highest-credit online node serves and pays back the
                // pool. Share of traffic converges to the designed
                // weights — which is exactly right until the real
                // machines stop matching the design document.
                let online = cluster.dispatchable();
                if online.is_empty() {
                    return None;
                }
                let total: f64 = online.iter().map(|&i| believed[i]).sum();
                for &i in &online {
                    credits[i] += believed[i];
                }
                let pick = online
                    .into_iter()
                    .max_by(|&a, &b| {
                        credits[a]
                            .partial_cmp(&credits[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("online non-empty");
                credits[pick] -= total;
                Some(pick)
            }
            Kind::SelfAware(state) => state.dispatch(cluster, req, rng),
        }
    }

    /// Reports a terminal request outcome.
    pub fn feedback(&mut self, outcome: &RequestOutcome, now: Tick) {
        if let Kind::SelfAware(state) = &mut self.kind {
            state.feedback(outcome, now);
        }
    }

    /// Current autoscaling safety margin, if the controller has one
    /// (exposed for tests and explanations).
    #[must_use]
    pub fn safety_margin(&self) -> Option<f64> {
        match &self.kind {
            Kind::SelfAware(s) if s.levels.contains(Level::Time) => Some(s.core.safety()),
            _ => None,
        }
    }

    /// Number of reward-drift events the meta level has reacted to.
    #[must_use]
    pub fn drift_events(&self) -> u32 {
        match &self.kind {
            Kind::SelfAware(s) => s.drift_events,
            _ => 0,
        }
    }

    /// Corrupts the controller's learned arrival model in place —
    /// the injection point for [`ModelCorruptionKind`] faults. A
    /// no-op for model-free baselines (they have no state to poison).
    pub fn inject_model_corruption(&mut self, kind: ModelCorruptionKind, now: Tick) {
        if let Kind::SelfAware(state) = &mut self.kind {
            state.inject_model_corruption(kind, now);
        }
    }

    /// Watchdog counters, if this controller is supervised.
    #[must_use]
    pub fn supervision_stats(&self) -> Option<SupervisionStats> {
        match &self.kind {
            Kind::SelfAware(s) => s.core.supervision_stats(),
            _ => None,
        }
    }

    /// The supervisor's explanation log, if this controller is
    /// supervised.
    #[must_use]
    pub fn explanations(&self) -> Option<&ExplanationLog> {
        match &self.kind {
            Kind::SelfAware(s) => s.core.explanations(),
            _ => None,
        }
    }

    /// Which model currently drives autoscaling (supervised
    /// controllers only).
    #[must_use]
    pub fn control_source(&self) -> Option<ControlSource> {
        match &self.kind {
            Kind::SelfAware(s) => s.core.control_source(),
            _ => None,
        }
    }
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match &self.kind {
            Kind::Random => "Random",
            Kind::RoundRobin { .. } => "RoundRobin",
            Kind::LeastLoaded => "LeastLoaded",
            Kind::StaticRanked { .. } => "StaticRanked",
            Kind::SelfAware(_) => "SelfAware",
        };
        f.debug_struct("Controller").field("kind", &name).finish()
    }
}

/// Internal state of the level-gated self-aware controller.
///
/// Demand forecasting, supervision, and safety adaptation live in the
/// reusable [`AutoscaleCore`] (also the `liveserve` governor policy);
/// this struct adds the dispatch-side state the core doesn't need —
/// per-node success beliefs, meta-level exploration, drift reaction.
struct SelfAwareState {
    levels: LevelSet,
    n: usize,
    round_robin_next: usize,
    core: AutoscaleCore,
    // time awareness (dispatch side)
    success: Vec<Ewma>,
    // meta awareness
    detector: PageHinkley,
    epsilon: f64,
    drift_events: u32,
}

const RISK_PENALTY: f64 = 25.0;
const SUCCESS_PRIOR: f64 = 0.9;

impl SelfAwareState {
    fn new(levels: LevelSet, n: usize) -> Self {
        Self {
            levels,
            n,
            round_robin_next: 0,
            core: AutoscaleCore::new("cloud-arrivals"),
            success: (0..n)
                .map(|_| {
                    let mut e = Ewma::new(0.08);
                    e.observe(SUCCESS_PRIOR);
                    e
                })
                .collect(),
            detector: PageHinkley::new(0.02, 4.0),
            epsilon: 0.05,
            drift_events: 0,
        }
    }

    fn supervised(mut self) -> Self {
        self.core = self.core.supervised();
        self
    }

    fn inject_model_corruption(&mut self, kind: ModelCorruptionKind, now: Tick) {
        self.core.inject_model_corruption(kind, now);
    }

    /// Observes the tick's arrivals and returns the pool size the
    /// controller wants rented, or `None` without time awareness.
    fn desired_pool(&mut self, cluster: &Cluster, arrivals: u32, now: Tick) -> Option<usize> {
        if !self.levels.contains(Level::Time) {
            return None; // no history/forecast → no autoscaling
        }
        let rate = self.core.demand_rate(f64::from(arrivals), now).max(0.0);

        // Goal awareness: adapt the safety margin from the live
        // violation-vs-cost trade-off (asymmetric: react fast to
        // rising violations, relax slowly — see
        // [`AutoscaleCore::adapt_safety`]).
        if self.levels.contains(Level::Goal) {
            self.core.adapt_safety();
        }

        // Size the pool from the demand estimate in work units.
        let mean_work = self.core.mean_work(3.0);
        let mean_cap = (0..self.n)
            .map(|i| cluster.node(i).spec().capacity)
            .sum::<f64>()
            / self.n as f64;
        let needed = ((rate * mean_work * self.core.safety()) / mean_cap).ceil() as usize;
        Some(needed.clamp(2, self.n))
    }

    fn candidates(&self, cluster: &Cluster) -> Vec<usize> {
        if self.levels.contains(Level::Stimulus) {
            cluster.dispatchable()
        } else {
            cluster.rented_indices()
        }
    }

    fn dispatch(&mut self, cluster: &Cluster, req: &Request, rng: &mut Rng) -> Option<usize> {
        self.core.observe_work(req.work);
        let cands = self.candidates(cluster);
        if cands.is_empty() {
            return None;
        }
        if !self.levels.contains(Level::Stimulus) {
            // Pre-self-aware: blind round-robin.
            let pick = cands[self.round_robin_next % cands.len()];
            self.round_robin_next = (self.round_robin_next + 1) % cands.len().max(1);
            return Some(pick);
        }
        // Meta-governed exploration keeps node beliefs fresh.
        if self.levels.contains(Level::Meta) && rng.gen::<f64>() < self.epsilon {
            return Some(cands[rng.gen_range(0..cands.len())]);
        }
        // Score: expected wait plus (with time awareness) reliability
        // risk learned from history.
        cands.into_iter().min_by(|&a, &b| {
            self.score(cluster, a)
                .partial_cmp(&self.score(cluster, b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    fn score(&self, cluster: &Cluster, i: usize) -> f64 {
        let wait = cluster.node(i).drain_time();
        if self.levels.contains(Level::Time) {
            let risk = 1.0 - self.success[i].level();
            wait + RISK_PENALTY * risk
        } else {
            wait
        }
    }

    fn feedback(&mut self, outcome: &RequestOutcome, _now: Tick) {
        let violated = outcome.violates_sla();
        self.core.observe_outcome(violated);
        if self.levels.contains(Level::Time) {
            if let Some(node) = outcome.node() {
                let signal = match outcome {
                    RequestOutcome::Completed { .. } if !violated => 1.0,
                    RequestOutcome::Completed { .. } => 0.5,
                    RequestOutcome::Failed { .. } => 0.0,
                    RequestOutcome::Rejected { .. } => unreachable!("rejected has no node"),
                };
                self.success[node].observe(signal);
            }
        }
        if self.levels.contains(Level::Meta) {
            let drifted = self.detector.observe(if violated { 1.0 } else { 0.0 });
            if drifted {
                self.drift_events += 1;
                // The world changed: our node beliefs may be stale.
                self.epsilon = 0.3;
                self.core.raise_safety_floor(2.0);
                for s in &mut self.success {
                    // Soften beliefs toward the prior.
                    let softened = 0.5 * s.level() + 0.5 * SUCCESS_PRIOR;
                    let mut e = Ewma::new(0.08);
                    e.observe(softened);
                    *s = e;
                }
            } else {
                self.epsilon = (self.epsilon * 0.999).max(0.02);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscale::SAFETY_DEFAULT;
    use crate::node::NodeSpec;
    use simkernel::SeedTree;

    fn rng() -> Rng {
        SeedTree::new(71).rng("strategy")
    }

    fn cluster() -> Cluster {
        let specs = vec![
            NodeSpec::new(4.0, 0.0, 0.0, 1.0),
            NodeSpec::new(1.0, 0.0, 0.0, 1.0),
            NodeSpec::new(2.0, 0.0, 0.0, 1.0),
        ];
        Cluster::new(specs, &SeedTree::new(3))
    }

    fn req(id: u64) -> Request {
        Request::new(id, 3.0, Tick(0), 12)
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Strategy::Random.label(), "random");
        assert_eq!(Strategy::LeastLoaded.label(), "least-loaded");
        let sa = Strategy::SelfAware {
            levels: LevelSet::new().with(Level::Stimulus),
        };
        assert_eq!(sa.label(), "self-aware[stimulus]");
    }

    #[test]
    fn round_robin_cycles() {
        let c = cluster();
        let mut ctl = Strategy::RoundRobin.build(3);
        let mut r = rng();
        let picks: Vec<usize> = (0..6)
            .map(|i| ctl.dispatch(&c, &req(i), &mut r).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_prefers_empty_fast_node() {
        let mut c = cluster();
        c.dispatch(0, req(0), Tick(0)); // load node 0
        c.dispatch(0, req(1), Tick(0));
        let mut ctl = Strategy::LeastLoaded.build(3);
        let mut r = rng();
        let pick = ctl.dispatch(&c, &req(2), &mut r).unwrap();
        assert_ne!(pick, 0, "node 0 has backlog");
    }

    #[test]
    fn static_ranked_follows_beliefs_not_reality() {
        let c = cluster(); // actual capacities [4, 1, 2]
        let mut ctl = Strategy::StaticRanked {
            believed_capacity: vec![1.0, 6.0, 1.0], // wrongly believes node 1 fastest
        }
        .build(3);
        let mut r = rng();
        // Over 8 dispatches, the believed-fastest node gets the
        // majority share (6/8), regardless of true capacities.
        let mut to_node1 = 0;
        for i in 0..8 {
            if ctl.dispatch(&c, &req(i), &mut r) == Some(1) {
                to_node1 += 1;
            }
        }
        assert_eq!(to_node1, 6);
    }

    #[test]
    fn random_only_uses_rented() {
        let mut c = cluster();
        c.rent_first(1);
        let mut ctl = Strategy::Random.build(3);
        let mut r = rng();
        for i in 0..20 {
            assert_eq!(ctl.dispatch(&c, &req(i), &mut r), Some(0));
        }
    }

    #[test]
    fn blind_selfaware_is_round_robin() {
        let c = cluster();
        let mut ctl = Strategy::SelfAware {
            levels: LevelSet::new(),
        }
        .build(3);
        let mut r = rng();
        let picks: Vec<usize> = (0..3)
            .map(|i| ctl.dispatch(&c, &req(i), &mut r).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2]);
        assert_eq!(ctl.safety_margin(), None);
    }

    #[test]
    fn stimulus_selfaware_prefers_short_queue() {
        let mut c = cluster();
        c.dispatch(0, req(0), Tick(0));
        c.dispatch(0, req(1), Tick(0));
        let mut ctl = Strategy::SelfAware {
            levels: LevelSet::new().with(Level::Stimulus),
        }
        .build(3);
        let mut r = rng();
        let pick = ctl.dispatch(&c, &req(2), &mut r).unwrap();
        assert_ne!(pick, 0);
    }

    #[test]
    fn time_selfaware_autoscales() {
        let mut c = Cluster::standard_pool(12, &SeedTree::new(4));
        let levels = LevelSet::new().with(Level::Stimulus).with(Level::Time);
        let mut ctl = Strategy::SelfAware { levels }.build(12);
        let mut r = rng();
        // Low demand for a while → pool should shrink below 12.
        for t in 0..200u64 {
            ctl.begin_tick(&mut c, 1, Tick(t), &mut r);
        }
        assert!(c.rented_count() < 12, "rented {}", c.rented_count());
        assert!(c.rented_count() >= 2);
        assert_eq!(ctl.safety_margin(), Some(SAFETY_DEFAULT));
    }

    #[test]
    fn time_selfaware_learns_bad_node() {
        let c = cluster();
        let levels = LevelSet::new().with(Level::Stimulus).with(Level::Time);
        let mut ctl = Strategy::SelfAware { levels }.build(3);
        let mut r = rng();
        // Repeatedly report failures on node 0.
        for _ in 0..200 {
            ctl.feedback(
                &RequestOutcome::Failed {
                    request: req(0),
                    at: Tick(1),
                    node: 0,
                },
                Tick(1),
            );
        }
        let pick = ctl.dispatch(&c, &req(1), &mut r).unwrap();
        assert_ne!(pick, 0, "learned unreliability should steer away");
    }

    #[test]
    fn goal_selfaware_adapts_safety() {
        let mut c = Cluster::standard_pool(8, &SeedTree::new(5));
        let levels = LevelSet::new()
            .with(Level::Stimulus)
            .with(Level::Time)
            .with(Level::Goal);
        let mut ctl = Strategy::SelfAware { levels }.build(8);
        let mut r = rng();
        // Flood with violations → safety margin should rise.
        for _ in 0..500 {
            ctl.feedback(
                &RequestOutcome::Failed {
                    request: req(0),
                    at: Tick(1),
                    node: 1,
                },
                Tick(1),
            );
        }
        for t in 0..50u64 {
            ctl.begin_tick(&mut c, 3, Tick(t), &mut r);
        }
        assert!(ctl.safety_margin().unwrap() > SAFETY_DEFAULT);
    }

    #[test]
    fn meta_selfaware_detects_reward_drift() {
        let levels = LevelSet::full();
        let mut ctl = Strategy::SelfAware { levels }.build(3);
        // Long healthy phase then sustained violations.
        for _ in 0..800 {
            ctl.feedback(
                &RequestOutcome::Completed {
                    request: req(0),
                    at: Tick(5),
                    node: 0,
                    latency: 3,
                },
                Tick(5),
            );
        }
        for _ in 0..300 {
            ctl.feedback(
                &RequestOutcome::Failed {
                    request: req(0),
                    at: Tick(6),
                    node: 0,
                },
                Tick(6),
            );
        }
        assert!(ctl.drift_events() >= 1);
    }

    #[test]
    #[should_panic(expected = "believed capacity vector must match node count")]
    fn static_ranked_arity_checked() {
        let _ = Strategy::StaticRanked {
            believed_capacity: vec![1.0],
        }
        .build(3);
    }
}
