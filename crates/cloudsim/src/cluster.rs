//! The node pool: churn, dispatch and processing for one tick.

use crate::node::{Node, NodeSpec};
use crate::request::{Request, RequestOutcome};
use simkernel::rng::{Rng, SeedTree};
use simkernel::Tick;

/// A pool of worker nodes plus a rented-subset marker.
///
/// "Renting" models elastic capacity: only rented nodes may receive
/// new work, and cost accrues per rented-node-tick. All nodes continue
/// to churn whether rented or not.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    rented: Vec<bool>,
    rng: Rng,
    rented_node_ticks: u64,
}

impl Cluster {
    /// Builds a cluster from specs; all nodes start rented.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    #[must_use]
    pub fn new(specs: Vec<NodeSpec>, seeds: &SeedTree) -> Self {
        assert!(!specs.is_empty(), "need at least one node");
        let n = specs.len();
        Self {
            nodes: specs.into_iter().map(Node::new).collect(),
            rented: vec![true; n],
            rng: seeds.rng("cluster"),
            rented_node_ticks: 0,
        }
    }

    /// Standard heterogeneous volunteer pool: `n` nodes alternating
    /// between reliable fast nodes and flaky volunteers, capacities
    /// spread geometrically.
    #[must_use]
    pub fn standard_pool(n: usize, seeds: &SeedTree) -> Self {
        assert!(n > 0, "need at least one node");
        let specs = (0..n)
            .map(|i| {
                let capacity = 1.0 + (i % 4) as f64; // 1..4 work units/tick
                if i % 3 == 0 {
                    NodeSpec::reliable(capacity)
                } else {
                    NodeSpec::volunteer(capacity)
                }
            })
            .collect();
        Self::new(specs, seeds)
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pool is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to node `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn node(&self, i: usize) -> &Node {
        &self.nodes[i]
    }

    /// Whether node `i` is rented.
    #[must_use]
    pub fn is_rented(&self, i: usize) -> bool {
        self.rented[i]
    }

    /// Marks nodes `0..k` rented and releases the rest. Strategies
    /// that want a non-prefix subset use [`Cluster::set_rented`].
    pub fn rent_first(&mut self, k: usize) {
        for (i, r) in self.rented.iter_mut().enumerate() {
            *r = i < k;
        }
    }

    /// Sets the rented flag of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_rented(&mut self, i: usize, rented: bool) {
        self.rented[i] = rented;
    }

    /// Number of currently rented nodes.
    #[must_use]
    pub fn rented_count(&self) -> usize {
        self.rented.iter().filter(|&&r| r).count()
    }

    /// Indices of nodes that are rented **and** online (the dispatch
    /// candidates for stimulus-aware strategies).
    #[must_use]
    pub fn dispatchable(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.rented[i] && self.nodes[i].is_online())
            .collect()
    }

    /// Indices of rented nodes regardless of liveness (what a
    /// stimulus-*unaware* controller believes it can use).
    #[must_use]
    pub fn rented_indices(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.rented[i]).collect()
    }

    /// Total backlog across online rented nodes, in work units.
    #[must_use]
    pub fn total_backlog(&self) -> f64 {
        self.dispatchable()
            .into_iter()
            .map(|i| self.nodes[i].backlog())
            .sum()
    }

    /// Aggregate online rented capacity, work units per tick.
    #[must_use]
    pub fn online_capacity(&self) -> f64 {
        self.dispatchable()
            .into_iter()
            .map(|i| self.nodes[i].spec().capacity)
            .sum()
    }

    /// Accumulated rented-node-ticks (the cost integral).
    #[must_use]
    pub fn rented_node_ticks(&self) -> u64 {
        self.rented_node_ticks
    }

    /// Dispatches `req` to node `i`, blind to liveness (the request is
    /// lost if the node is offline). Returns the loss outcome if so.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dispatch(&mut self, i: usize, req: Request, now: Tick) -> Option<RequestOutcome> {
        self.nodes[i].enqueue_blind(req, now, i)
    }

    /// Forces a zone outage: nodes `first .. first + count` (clamped
    /// to the pool) go offline until `until`, dropping their queues.
    /// Returns the losses. See [`Node::force_offline`] for semantics.
    pub fn force_outage(
        &mut self,
        first: usize,
        count: usize,
        until: Tick,
        now: Tick,
    ) -> Vec<RequestOutcome> {
        let end = first.saturating_add(count).min(self.nodes.len());
        let mut outcomes = Vec::new();
        for i in first.min(self.nodes.len())..end {
            outcomes.extend(self.nodes[i].force_offline(now, i, until));
        }
        outcomes
    }

    /// Advances churn and processing for one tick; accrues rental
    /// cost; returns all terminal outcomes.
    pub fn step(&mut self, now: Tick) -> Vec<RequestOutcome> {
        let mut outcomes = Vec::new();
        self.step_into(now, &mut outcomes);
        outcomes
    }

    /// [`Cluster::step`] appending outcomes into `out` instead of
    /// allocating: the simulation tick loop hands the same buffer in
    /// every tick, so steady-state churn/processing performs no
    /// per-node or per-tick outcome allocation.
    pub fn step_into(&mut self, now: Tick, out: &mut Vec<RequestOutcome>) {
        self.rented_node_ticks += self.rented_count() as u64;
        for i in 0..self.nodes.len() {
            self.nodes[i].churn_step_into(now, i, &mut self.rng, out);
        }
        for i in 0..self.nodes.len() {
            self.nodes[i].process_step_into(now, i, &mut self.rng, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds() -> SeedTree {
        SeedTree::new(55)
    }

    fn stable_cluster(n: usize) -> Cluster {
        let specs = (0..n).map(|_| NodeSpec::new(2.0, 0.0, 0.0, 1.0)).collect();
        Cluster::new(specs, &seeds())
    }

    #[test]
    fn dispatch_and_complete() {
        let mut c = stable_cluster(2);
        assert!(c
            .dispatch(0, Request::new(0, 2.0, Tick(0), 10), Tick(0))
            .is_none());
        let out = c.step(Tick(1));
        assert_eq!(out.len(), 1);
        assert!(out[0].completed());
    }

    #[test]
    fn renting_controls_candidates_and_cost() {
        let mut c = stable_cluster(4);
        assert_eq!(c.rented_count(), 4);
        c.rent_first(2);
        assert_eq!(c.rented_count(), 2);
        assert_eq!(c.dispatchable(), vec![0, 1]);
        assert_eq!(c.rented_indices(), vec![0, 1]);
        c.step(Tick(1));
        c.step(Tick(2));
        assert_eq!(c.rented_node_ticks(), 4);
        c.set_rented(3, true);
        assert!(c.is_rented(3));
        assert_eq!(c.dispatchable(), vec![0, 1, 3]);
    }

    #[test]
    fn capacities_aggregate() {
        let c = stable_cluster(3);
        assert!((c.online_capacity() - 6.0).abs() < 1e-12);
        assert_eq!(c.total_backlog(), 0.0);
    }

    #[test]
    fn standard_pool_is_heterogeneous() {
        let c = Cluster::standard_pool(8, &seeds());
        assert_eq!(c.len(), 8);
        let caps: std::collections::HashSet<u64> =
            (0..8).map(|i| c.node(i).spec().capacity as u64).collect();
        assert!(caps.len() > 1, "capacities should vary");
    }

    #[test]
    fn offline_dispatch_is_lost() {
        // Node that churns off immediately.
        let specs = vec![NodeSpec::new(1.0, 0.0, 1.0, 0.0)];
        let mut c = Cluster::new(specs, &seeds());
        c.step(Tick(0)); // churns the node off
        assert!(c.dispatchable().is_empty());
        let out = c.dispatch(0, Request::new(0, 1.0, Tick(1), 5), Tick(1));
        assert!(matches!(out, Some(RequestOutcome::Failed { .. })));
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed: u64| {
            let mut c = Cluster::standard_pool(6, &SeedTree::new(seed));
            let mut total = 0u64;
            for t in 0..200u64 {
                if t % 3 == 0 {
                    let targets = c.dispatchable();
                    if let Some(&i) = targets.first() {
                        c.dispatch(i, Request::new(t, 2.0, Tick(t), 20), Tick(t));
                    }
                }
                total += c.step(Tick(t)).len() as u64;
            }
            total
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn zone_outage_takes_block_down_and_repairs_on_time() {
        let mut c = stable_cluster(6);
        c.dispatch(1, Request::new(0, 50.0, Tick(0), 99), Tick(0));
        let lost = c.force_outage(1, 3, Tick(5), Tick(0));
        assert_eq!(lost.len(), 1, "queued work in the zone is lost");
        assert_eq!(c.dispatchable(), vec![0, 4, 5]);
        // churn_on = 1.0 in stable_cluster, yet the zone stays down.
        c.step(Tick(1));
        assert_eq!(c.dispatchable(), vec![0, 4, 5]);
        c.step(Tick(5));
        assert_eq!(c.dispatchable(), vec![0, 1, 2, 3, 4, 5]);
        // Out-of-range zones clamp instead of panicking.
        assert!(c.force_outage(4, 99, Tick(9), Tick(6)).is_empty());
        assert_eq!(c.dispatchable(), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "need at least one node")]
    fn empty_cluster_panics() {
        let _ = Cluster::new(vec![], &seeds());
    }
}
