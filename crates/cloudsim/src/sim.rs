//! End-to-end scenario runner: demand generation → dispatch →
//! processing → multi-objective scoring.

use crate::cluster::Cluster;
use crate::node::NodeSpec;
use crate::request::{Request, RequestOutcome};
use crate::strategy::Strategy;
use selfaware::goals::{Direction, Goal, Objective};
use simkernel::rng::SeedTree;
use simkernel::stats::Percentiles;
use simkernel::{MetricSet, Tick, TimeSeries};
use workloads::faults::{FaultKind, FaultPlan};
use workloads::rates::{poisson, DiurnalRate, RateFn};
use workloads::Schedule;

/// Configuration of one cloud scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Node specs (the *actual* machines).
    pub specs: Vec<NodeSpec>,
    /// Simulation length in ticks.
    pub steps: u64,
    /// Mean demand, requests per tick.
    pub base_rate: f64,
    /// Diurnal swing around the mean.
    pub amplitude: f64,
    /// Diurnal period in ticks.
    pub period: f64,
    /// Extra disturbances applied to the demand rate.
    pub schedule: Schedule,
    /// Mean request work units (exponential).
    pub mean_work: f64,
    /// SLA deadline in ticks.
    pub deadline: u64,
    /// Scheduled faults. `ZoneOutage` pins a node block offline for
    /// its duration (on top of stochastic churn); `ModelCorruption`
    /// poisons the controller's learned arrival model. Other kinds
    /// are ignored by this simulator.
    pub faults: FaultPlan,
    /// Dispatch strategy.
    pub strategy: Strategy,
}

impl ScenarioConfig {
    /// The standard T1/T2 scenario: 12-node heterogeneous volunteer
    /// pool, diurnal demand with a mid-run surge, given strategy.
    #[must_use]
    pub fn standard(strategy: Strategy, steps: u64, seeds: &SeedTree) -> Self {
        let specs = (0..12)
            .map(|i| {
                let capacity = 1.0 + (i % 4) as f64;
                if i % 3 == 0 {
                    NodeSpec::reliable(capacity)
                } else {
                    NodeSpec::volunteer(capacity)
                }
            })
            .collect();
        let _ = seeds; // specs are deterministic; seeds reserved for variants
        Self {
            specs,
            steps,
            base_rate: 3.5,
            amplitude: 2.5,
            period: 600.0,
            schedule: Schedule::none()
                .and(workloads::Disturbance::scale(Tick(steps / 2), 1.4))
                .and(workloads::Disturbance::spike(
                    Tick(steps * 3 / 4),
                    3.0,
                    steps / 20,
                )),
            mean_work: 3.0,
            deadline: 12,
            faults: FaultPlan::none(),
            strategy,
        }
    }
}

/// Outputs of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scalar metrics (see [`run_scenario`] for keys).
    pub metrics: MetricSet,
    /// Per-tick SLA-violation fraction (bucketable for figures).
    pub violations: TimeSeries,
    /// Per-tick completed-request mean latency.
    pub latency: TimeSeries,
}

/// The composite utility goal used to score all cloud strategies:
/// maximise completion ratio, minimise SLA violations, minimise rented
/// cost — the paper's "trade-offs between goals at run time".
#[must_use]
pub fn cloud_goal() -> Goal {
    Goal::new("cloud-qos-vs-cost")
        .objective(Objective::new(
            "completion_ratio",
            Direction::Maximize,
            1.0,
            2.0,
        ))
        .objective(Objective::new(
            "violation_rate",
            Direction::Minimize,
            0.25,
            2.0,
        ))
        .objective(Objective::new("cost_ratio", Direction::Minimize, 1.0, 1.0))
}

/// Runs one scenario. Metric keys produced:
///
/// * `arrived`, `completed` — request counts;
/// * `completion_ratio` — completed / arrived;
/// * `violation_rate` — SLA violations / arrived;
/// * `mean_latency`, `p95_latency` — over completed requests;
/// * `cost_ratio` — rented-node-ticks / (steps × nodes);
/// * `utility` — [`cloud_goal`] composite;
/// * `drift_events` — meta-level detections (0 for baselines).
#[must_use]
pub fn run_scenario(cfg: &ScenarioConfig, seeds: &SeedTree) -> ScenarioResult {
    let n = cfg.specs.len();
    let mut cluster = Cluster::new(cfg.specs.clone(), seeds);
    let mut controller = cfg.strategy.build(n);
    let mut rate_fn = DiurnalRate::new(cfg.base_rate, cfg.amplitude, cfg.period);
    let mut arrivals_rng = seeds.rng("arrivals");
    let mut work_rng = seeds.rng("work");
    let mut strat_rng = seeds.rng("strategy");

    let mut arrived = 0u64;
    let mut completed = 0u64;
    let mut violations = 0u64;
    let mut latencies = Percentiles::new();
    let mut lat_sum = 0.0;
    let mut violations_series = TimeSeries::new(cfg.strategy.label());
    let mut latency_series = TimeSeries::new(cfg.strategy.label());
    let mut next_id = 0u64;

    for t in 0..cfg.steps {
        let now = Tick(t);
        let mut tick_outcomes: Vec<RequestOutcome> = Vec::new();

        // Apply scheduled zone outages and model corruptions before
        // the controller observes the cluster.
        for ev in cfg.faults.events_at(now) {
            match ev.kind {
                FaultKind::ZoneOutage {
                    first,
                    count,
                    duration,
                } => {
                    let until = Tick(t + duration);
                    tick_outcomes.extend(cluster.force_outage(first, count, until, now));
                }
                FaultKind::ModelCorruption { kind, .. } => {
                    controller.inject_model_corruption(kind, now);
                }
                _ => {}
            }
        }

        let rate = cfg.schedule.apply(rate_fn.rate(now), now);
        let count = poisson(rate, &mut arrivals_rng);
        controller.begin_tick(&mut cluster, count, now, &mut strat_rng);

        for _ in 0..count {
            use rand::Rng as _;
            arrived += 1;
            let u: f64 = work_rng.gen::<f64>();
            let work = -cfg.mean_work * u.max(1e-12).ln();
            let req = Request::new(next_id, work, now, cfg.deadline);
            next_id += 1;
            match controller.dispatch(&cluster, &req, &mut strat_rng) {
                Some(nodeidx) => {
                    if let Some(fail) = cluster.dispatch(nodeidx, req, now) {
                        tick_outcomes.push(fail);
                    }
                }
                None => tick_outcomes.push(RequestOutcome::Rejected {
                    request: req,
                    at: now,
                }),
            }
        }
        tick_outcomes.extend(cluster.step(now));

        let mut tick_viol = 0u64;
        let tick_total = tick_outcomes.len();
        for outcome in &tick_outcomes {
            controller.feedback(outcome, now);
            if outcome.violates_sla() {
                violations += 1;
                tick_viol += 1;
            }
            if let Some(lat) = outcome.latency() {
                completed += 1;
                latencies.push(lat as f64);
                lat_sum += lat as f64;
            }
        }
        if tick_total > 0 {
            violations_series.push(now, tick_viol as f64 / tick_total as f64);
        }
        if let Some(RequestOutcome::Completed { latency, .. }) =
            tick_outcomes.iter().find(|o| o.completed())
        {
            latency_series.push(now, *latency as f64);
        }
    }

    let mut metrics = MetricSet::new();
    let arrived_f = arrived.max(1) as f64;
    metrics.set("arrived", arrived as f64);
    metrics.set("completed", completed as f64);
    metrics.set("completion_ratio", completed as f64 / arrived_f);
    metrics.set("violation_rate", violations as f64 / arrived_f);
    metrics.set(
        "mean_latency",
        if completed > 0 {
            lat_sum / completed as f64
        } else {
            0.0
        },
    );
    metrics.set("p95_latency", latencies.p95().unwrap_or(0.0));
    metrics.set(
        "cost_ratio",
        cluster.rented_node_ticks() as f64 / (cfg.steps.max(1) * n as u64) as f64,
    );
    metrics.set("drift_events", f64::from(controller.drift_events()));
    let sup = controller.supervision_stats().unwrap_or_default();
    metrics.set("model_rollbacks", f64::from(sup.rollbacks));
    metrics.set("model_fallbacks", f64::from(sup.fallbacks));
    metrics.set("model_repromotions", f64::from(sup.repromotions));
    let utility = cloud_goal().utility(|k| metrics.get(k));
    metrics.set("utility", utility);

    ScenarioResult {
        metrics,
        violations: violations_series,
        latency: latency_series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfaware::levels::LevelSet;

    fn run(strategy: Strategy, seed: u64, steps: u64) -> ScenarioResult {
        let seeds = SeedTree::new(seed);
        let cfg = ScenarioConfig::standard(strategy, steps, &seeds);
        run_scenario(&cfg, &seeds)
    }

    #[test]
    fn scenario_produces_sane_metrics() {
        let r = run(Strategy::LeastLoaded, 1, 1500);
        let m = &r.metrics;
        assert!(m.get("arrived").unwrap() > 1000.0);
        let cr = m.get("completion_ratio").unwrap();
        assert!((0.3..=1.0).contains(&cr), "completion ratio {cr}");
        let vr = m.get("violation_rate").unwrap();
        assert!((0.0..=1.0).contains(&vr));
        assert!(m.get("p95_latency").unwrap() >= m.get("mean_latency").unwrap() * 0.5);
        assert!(m.get("utility").is_some());
        assert!(!r.violations.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(Strategy::RoundRobin, 9, 500);
        let b = run(Strategy::RoundRobin, 9, 500);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(Strategy::RoundRobin, 1, 500);
        let b = run(Strategy::RoundRobin, 2, 500);
        assert_ne!(
            a.metrics.get("completed"),
            b.metrics.get("completed"),
            "distinct seeds should give distinct sample paths"
        );
    }

    #[test]
    fn self_aware_beats_random_on_utility() {
        // The paper's central hypothesis, in miniature.
        let mut sa_wins = 0;
        for seed in 0..3 {
            let sa = run(
                Strategy::SelfAware {
                    levels: LevelSet::full(),
                },
                seed,
                2000,
            );
            let rnd = run(Strategy::Random, seed, 2000);
            if sa.metrics.get("utility") > rnd.metrics.get("utility") {
                sa_wins += 1;
            }
        }
        assert!(sa_wins >= 2, "self-aware won {sa_wins}/3 seeds");
    }

    #[test]
    fn self_aware_cheaper_than_rent_all_baselines() {
        let sa = run(
            Strategy::SelfAware {
                levels: LevelSet::full(),
            },
            4,
            2000,
        );
        let ll = run(Strategy::LeastLoaded, 4, 2000);
        assert!(
            sa.metrics.get("cost_ratio").unwrap() < ll.metrics.get("cost_ratio").unwrap(),
            "autoscaling should cut rented cost"
        );
    }

    #[test]
    fn zone_outage_costs_completions_but_run_survives() {
        use workloads::faults::FaultEvent;
        let steps = 2000;
        let faulty = |seed: u64| {
            let seeds = SeedTree::new(seed);
            let mut cfg = ScenarioConfig::standard(Strategy::LeastLoaded, steps, &seeds);
            // Take out half the pool for a fifth of the run, twice.
            cfg.faults = FaultPlan::none()
                .and(FaultEvent::zone_outage(Tick(steps / 4), 0, 6, steps / 5))
                .and(FaultEvent::zone_outage(
                    Tick(3 * steps / 4),
                    6,
                    6,
                    steps / 5,
                ));
            run_scenario(&cfg, &seeds)
        };
        let f = faulty(3);
        let h = run(Strategy::LeastLoaded, 3, steps);
        let cr_f = f.metrics.get("completion_ratio").unwrap();
        let cr_h = h.metrics.get("completion_ratio").unwrap();
        assert!(
            cr_f < cr_h,
            "outages must cost completions: {cr_f} vs {cr_h}"
        );
        assert!(cr_f > 0.2, "the run must survive the outages: {cr_f}");
        // Deterministic per seed.
        assert_eq!(faulty(3).metrics, f.metrics);
    }

    #[test]
    fn supervised_controller_survives_model_corruption() {
        use workloads::faults::{FaultEvent, ModelCorruptionKind};
        let steps = 2500;
        let plan = FaultPlan::none()
            .and(FaultEvent::model_corruption(
                Tick(steps / 3),
                0,
                ModelCorruptionKind::NanPoison,
            ))
            .and(FaultEvent::model_corruption(
                Tick(2 * steps / 3),
                0,
                ModelCorruptionKind::WeightScramble { gain: 40.0 },
            ));
        let run_arm = |strategy: Strategy| {
            let seeds = SeedTree::new(11);
            let mut cfg = ScenarioConfig::standard(strategy, steps, &seeds);
            cfg.faults = plan.clone();
            run_scenario(&cfg, &seeds)
        };
        let sup = run_arm(Strategy::SupervisedSelfAware {
            levels: LevelSet::full(),
        });
        let m = &sup.metrics;
        // The watchdog must have acted on the injected corruption and
        // the run must stay serviceable.
        assert!(
            m.get("model_rollbacks").unwrap() + m.get("model_fallbacks").unwrap() >= 1.0,
            "supervisor never intervened: {m:?}"
        );
        assert!(
            m.get("completion_ratio").unwrap() > 0.3,
            "supervised run collapsed: {m:?}"
        );
        // Deterministic per seed, including the supervision path.
        assert_eq!(
            run_arm(Strategy::SupervisedSelfAware {
                levels: LevelSet::full(),
            })
            .metrics,
            sup.metrics
        );
    }

    #[test]
    fn cloud_goal_prefers_good_outcomes() {
        let g = cloud_goal();
        let good = g.utility(|k| match k {
            "completion_ratio" => Some(0.98),
            "violation_rate" => Some(0.01),
            "cost_ratio" => Some(0.4),
            _ => None,
        });
        let bad = g.utility(|k| match k {
            "completion_ratio" => Some(0.6),
            "violation_rate" => Some(0.3),
            "cost_ratio" => Some(1.0),
            _ => None,
        });
        assert!(good > bad);
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use selfaware::levels::LevelSet;

    #[test]
    #[ignore]
    fn print_t1_metrics() {
        for strategy in [
            Strategy::Random,
            Strategy::RoundRobin,
            Strategy::LeastLoaded,
            Strategy::SelfAware {
                levels: LevelSet::full(),
            },
        ] {
            let mut u = 0.0;
            let mut v = 0.0;
            let mut c = 0.0;
            let mut comp = 0.0;
            for seed in 0..3u64 {
                let seeds = SeedTree::new(seed);
                let cfg = ScenarioConfig::standard(strategy.clone(), 6000, &seeds);
                let m = run_scenario(&cfg, &seeds).metrics;
                u += m.get("utility").unwrap() / 3.0;
                v += m.get("violation_rate").unwrap() / 3.0;
                c += m.get("cost_ratio").unwrap() / 3.0;
                comp += m.get("completion_ratio").unwrap() / 3.0;
            }
            println!(
                "{:<14} util {u:.3} viol {v:.3} cost {c:.3} compl {comp:.3}",
                strategy.label()
            );
        }
    }
}

#[cfg(test)]
mod probe_ablation {
    use super::*;
    use selfaware::levels::{Level, LevelSet};

    #[test]
    #[ignore]
    fn print_t2_ladder() {
        let ladder = [
            ("none", LevelSet::new()),
            ("+stimulus", LevelSet::new().with(Level::Stimulus)),
            (
                "+time",
                LevelSet::new().with(Level::Stimulus).with(Level::Time),
            ),
            (
                "+goal",
                LevelSet::new()
                    .with(Level::Stimulus)
                    .with(Level::Time)
                    .with(Level::Goal),
            ),
            ("full(+meta)", LevelSet::full()),
        ];
        for (name, levels) in ladder {
            let mut u = 0.0;
            let mut v = 0.0;
            let mut c = 0.0;
            for seed in 0..3u64 {
                let seeds = SeedTree::new(seed);
                let cfg = ScenarioConfig::standard(Strategy::SelfAware { levels }, 6000, &seeds);
                let m = run_scenario(&cfg, &seeds).metrics;
                u += m.get("utility").unwrap() / 3.0;
                v += m.get("violation_rate").unwrap() / 3.0;
                c += m.get("cost_ratio").unwrap() / 3.0;
            }
            println!("{name:<12} util {u:.3} viol {v:.3} cost {c:.3}");
        }
    }
}
