//! End-to-end scenario runner: demand generation → dispatch →
//! processing → multi-objective scoring.

use crate::cluster::Cluster;
use crate::node::NodeSpec;
use crate::request::{Request, RequestOutcome};
use crate::strategy::Strategy;
use selfaware::comms::{Channel, ChannelOutcome, CommsNetwork, CommsPolicy, CommsStats, Delivered};
use selfaware::explain::{Explanation, ExplanationLog};
use selfaware::goals::{Direction, Goal, Objective};
use selfaware::replay::{InterventionClass, InterventionMask};
use simkernel::obs;
use simkernel::rng::SeedTree;
use simkernel::stats::Percentiles;
use simkernel::{MetricSet, Tick, TimeSeries};
use workloads::faults::{ChannelPlan, FaultKind, FaultPlan};
use workloads::rates::{poisson, DiurnalRate, RateFn};
use workloads::Schedule;

/// How autoscaling decisions reach the node pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandPlane {
    /// The controller flips rental flags itself — a perfect,
    /// instantaneous command plane (the legacy behaviour, and still
    /// the default).
    Direct,
    /// The controller is remote: the pool is split into `zones`
    /// contiguous node blocks, each run by a zone agent, and rent
    /// targets travel to the agents as messages over the scenario's
    /// [`ChannelPlan`]. Agents report their applied counts back, so a
    /// staleness-aware controller can notice a zone it cannot reach
    /// and re-home the missing capacity.
    Zoned {
        /// Number of zone agents; zone `z` owns the contiguous node
        /// block `z*n/zones .. (z+1)*n/zones`.
        zones: usize,
    },
}

/// Ticks between command re-issues when a zone's report disagrees
/// with its target (staleness-aware plane only).
const REISSUE_INTERVAL: u64 = 40;

/// Runtime state of the [`CommandPlane::Zoned`] plane: the remote
/// controller's beliefs plus the per-zone agents' applied targets.
///
/// Comms addressing: node ids `0..zones` are the zone agents and id
/// `zones` is the controller. Rent targets are spread *evenly* across
/// zones (remainder to earlier zones) rather than prefix-packed, the
/// usual availability practice — and the property that leaves fresh
/// zones with spare room when a stale zone must be re-homed.
struct ZonedPlane {
    zones: usize,
    n: usize,
    aware: bool,
    mask: InterventionMask,
    net: CommsNetwork<usize>,
    /// Target each zone agent has actually applied (ground truth).
    applied: Vec<usize>,
    /// Controller-side belief of each zone's applied target.
    believed: Vec<usize>,
    /// Last target the controller issued per zone, and when.
    issued: Vec<Option<usize>>,
    issued_at: Vec<u64>,
    /// Newest sequence seen per zone (reordering guards).
    last_cmd_seq: Vec<Option<u64>>,
    last_report_seq: Vec<Option<u64>>,
    /// Delivery buffer reused every tick (no per-tick allocation).
    inbox: Vec<Delivered<usize>>,
    /// Per-zone liveness, refreshed each tick from the fault plan: a
    /// zone is dead while *all* its nodes sit inside an active
    /// `ZoneOutage` window. Reused buffer, no per-tick allocation.
    dead: Vec<bool>,
}

/// Channel adapter that silences a dead zone's agent: while a zone's
/// entire node block is inside an active [`FaultKind::ZoneOutage`]
/// window, frames to or from that agent are lost regardless of what
/// the underlying [`ChannelPlan`] says. This is the restore-ordering
/// fix for overlapping outage and [`workloads::NetPartition`]
/// windows: a partition healing mid-outage re-opens the *link*, but
/// the agent behind it is still off, so retransmits and acks must
/// keep dying until the outage itself lifts. Without this, the heal
/// would resurrect delivery to a zone with nobody home.
///
/// Only constructed when the fault plan actually schedules zone
/// outages, so outage-free scenarios keep their exact channel
/// behaviour (and bit-identical traces).
struct ZoneLiveChannel<'a> {
    inner: &'a ChannelPlan,
    /// Per-agent liveness for the current tick; controller (id ==
    /// `dead.len()`) is always alive.
    dead: &'a [bool],
}

impl Channel for ZoneLiveChannel<'_> {
    fn transmit(&self, src: usize, dst: usize, seq: u64, now: Tick) -> ChannelOutcome {
        let gone = |id: usize| self.dead.get(id).copied().unwrap_or(false);
        if gone(src) || gone(dst) {
            return ChannelOutcome::lost();
        }
        self.inner.transmit(src, dst, seq, now)
    }
}

impl ZonedPlane {
    fn new(zones: usize, n: usize, policy: CommsPolicy, mask: InterventionMask) -> Self {
        assert!(
            zones >= 1 && zones <= n,
            "zone count must be in 1..=node count"
        );
        // All nodes start rented (Cluster::new), so every agent starts
        // at its full zone size and the controller knows it.
        let sizes: Vec<usize> = (0..zones)
            .map(|z| (z + 1) * n / zones - z * n / zones)
            .collect();
        Self {
            zones,
            n,
            aware: !policy.is_naive(),
            mask,
            net: CommsNetwork::new(policy).with_mask(mask),
            applied: sizes.clone(),
            believed: sizes,
            issued: vec![None; zones],
            issued_at: vec![0; zones],
            last_cmd_seq: vec![None; zones],
            last_report_seq: vec![None; zones],
            inbox: Vec::new(),
            dead: vec![false; zones],
        }
    }

    fn zone_range(&self, z: usize) -> std::ops::Range<usize> {
        z * self.n / self.zones..(z + 1) * self.n / self.zones
    }

    /// Splits a total rent target evenly across zones, then (aware
    /// plane only) re-homes the believed shortfall of stale zones
    /// onto fresh zones that still have room.
    fn split(&self, total: usize, now: Tick) -> Vec<usize> {
        let total = total.min(self.n);
        let base = total / self.zones;
        let rem = total % self.zones;
        let mut targets: Vec<usize> = (0..self.zones)
            .map(|z| (base + usize::from(z < rem)).min(self.zone_range(z).len()))
            .collect();
        // Even split can undershoot when a zone is smaller than its
        // share; push the leftovers into zones with room.
        let mut leftover = total - targets.iter().sum::<usize>();
        for (z, target) in targets.iter_mut().enumerate() {
            let room = self.zone_range(z).len() - *target;
            let take = leftover.min(room);
            *target += take;
            leftover -= take;
        }
        if !self.aware {
            return targets;
        }
        // A zone whose reports have gone quiet for more than the
        // staleness half-life may never have applied its target;
        // conservatively re-home the believed shortfall.
        let ctrl = self.zones;
        let stale: Vec<bool> = (0..self.zones)
            .map(|z| self.net.freshness(ctrl, z, now) < 0.5)
            .collect();
        let mut shortfall: usize = (0..self.zones)
            .filter(|&z| stale[z])
            .map(|z| targets[z].saturating_sub(self.believed[z]))
            .sum();
        for z in 0..self.zones {
            if shortfall == 0 {
                break;
            }
            if stale[z] {
                continue;
            }
            let room = self.zone_range(z).len() - targets[z];
            let take = shortfall.min(room);
            targets[z] += take;
            shortfall -= take;
        }
        targets
    }

    /// One command-plane tick: refresh zone liveness from the fault
    /// plan, then issue changed (or overdue) targets, flow agent
    /// reports, land deliveries, apply commands.
    fn tick(
        &mut self,
        desired: Option<usize>,
        cluster: &mut Cluster,
        channel: &ChannelPlan,
        faults: &FaultPlan,
        now: Tick,
        log: &mut ExplanationLog,
    ) {
        // Taken out of `self` (inbox pattern) so the adapter can
        // borrow it while `tick_inner` mutates the rest of the plane.
        let mut dead = std::mem::take(&mut self.dead);
        let mut any_dead = false;
        for (z, flag) in dead.iter_mut().enumerate() {
            let r = z * self.n / self.zones..(z + 1) * self.n / self.zones;
            *flag = !r.is_empty() && r.clone().all(|i| faults.zone_down_at(i, now));
            any_dead |= *flag;
        }
        if any_dead {
            let live = ZoneLiveChannel {
                inner: channel,
                dead: &dead,
            };
            self.tick_inner(desired, cluster, &live, &dead, now, log);
        } else {
            self.tick_inner(desired, cluster, channel, &dead, now, log);
        }
        self.dead = dead;
    }

    fn tick_inner<C: Channel + ?Sized>(
        &mut self,
        desired: Option<usize>,
        cluster: &mut Cluster,
        channel: &C,
        dead: &[bool],
        now: Tick,
        log: &mut ExplanationLog,
    ) {
        let ctrl = self.zones;
        if let Some(total) = desired {
            let targets = self.split(total, now);
            for (z, &target) in targets.iter().enumerate() {
                let changed = self.issued[z] != Some(target);
                // The aware plane also re-issues when the zone's own
                // report disagrees with the standing order — that is
                // how a command abandoned by the retry budget during a
                // partition eventually gets through after the heal.
                // A masked counterfactual run suppresses exactly these
                // overdue re-issues; changed-triggered sends stay.
                let overdue = self.aware
                    && self.mask.allows(InterventionClass::CommsReissue)
                    && self.believed[z] != target
                    && now.0.saturating_sub(self.issued_at[z]) >= REISSUE_INTERVAL;
                if changed || overdue {
                    if !changed {
                        log.record_with(|| {
                            Explanation::new(now, format!("comms:reissue:{ctrl}->{z}"))
                                .because("target", target as f64)
                                .because("believed", self.believed[z] as f64)
                        });
                    }
                    self.net.send(channel, ctrl, z, target, now, log);
                    self.issued[z] = Some(target);
                    self.issued_at[z] = now.0;
                    if !self.aware {
                        // Fire-and-forget: assume the command landed.
                        self.believed[z] = target;
                    }
                }
            }
        }
        // Zone agents report their applied targets every tick — but a
        // dead zone's agent is off with its nodes and sends nothing.
        for (z, &zone_dead) in dead.iter().enumerate().take(self.zones) {
            if zone_dead {
                continue;
            }
            self.net.send(channel, z, ctrl, self.applied[z], now, log);
        }
        // Land deliveries into the reused inbox (taken out of `self`
        // so the loop body can mutate plane state while iterating).
        let mut inbox = std::mem::take(&mut self.inbox);
        inbox.clear();
        self.net.step_into(channel, now, log, &mut inbox);
        for d in inbox.drain(..) {
            if d.dst == ctrl {
                // Reports from a now-dead zone were sent before it
                // died; they are stale but true, so land them.
                if newest(&mut self.last_report_seq[d.src], d.seq) {
                    self.believed[d.src] = d.payload;
                }
            } else if dead[d.dst] {
                // Nobody home: a command that slipped through (sent
                // pre-death, arriving now) is not applied, and the
                // watermark is *not* bumped — when the zone comes
                // back, the aware plane's re-issue (fresh, higher
                // seq) must still be accepted.
            } else if newest(&mut self.last_cmd_seq[d.dst], d.seq) {
                self.applied[d.dst] = d.payload;
                let range = self.zone_range(d.dst);
                let target = d.payload.min(range.len());
                for (k, i) in range.enumerate() {
                    cluster.set_rented(i, k < target);
                }
            }
        }
        self.inbox = inbox;
    }
}

/// Monotone-sequence guard: accepts `seq` only if newer than the
/// stored watermark (delayed duplicates must not roll state back).
fn newest(watermark: &mut Option<u64>, seq: u64) -> bool {
    if watermark.is_none_or(|s| seq > s) {
        *watermark = Some(seq);
        true
    } else {
        false
    }
}

/// Configuration of one cloud scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Node specs (the *actual* machines).
    pub specs: Vec<NodeSpec>,
    /// Simulation length in ticks.
    pub steps: u64,
    /// Mean demand, requests per tick.
    pub base_rate: f64,
    /// Diurnal swing around the mean.
    pub amplitude: f64,
    /// Diurnal period in ticks.
    pub period: f64,
    /// Extra disturbances applied to the demand rate.
    pub schedule: Schedule,
    /// Mean request work units (exponential).
    pub mean_work: f64,
    /// SLA deadline in ticks.
    pub deadline: u64,
    /// Scheduled faults. `ZoneOutage` pins a node block offline for
    /// its duration (on top of stochastic churn); `ModelCorruption`
    /// poisons the controller's learned arrival model. Other kinds
    /// are ignored by this simulator.
    pub faults: FaultPlan,
    /// Dispatch strategy.
    pub strategy: Strategy,
    /// Channel model for controller↔zone command traffic (only
    /// exercised under [`CommandPlane::Zoned`]).
    pub channel: ChannelPlan,
    /// Communication discipline for command traffic: fire-and-forget
    /// or the reliable, staleness-tracking protocol.
    pub comms: CommsPolicy,
    /// How autoscaling decisions reach the pool.
    pub command_plane: CommandPlane,
    /// Counterfactual intervention mask, applied to the arrival-model
    /// supervisor and the zoned command plane (retries, overdue
    /// re-issues). [`InterventionMask::allow_all`] (the default)
    /// reproduces historical behaviour bit for bit.
    pub mask: InterventionMask,
}

impl ScenarioConfig {
    /// The standard T1/T2 scenario: 12-node heterogeneous volunteer
    /// pool, diurnal demand with a mid-run surge, given strategy.
    #[must_use]
    pub fn standard(strategy: Strategy, steps: u64, seeds: &SeedTree) -> Self {
        let specs = (0..12)
            .map(|i| {
                let capacity = 1.0 + (i % 4) as f64;
                if i % 3 == 0 {
                    NodeSpec::reliable(capacity)
                } else {
                    NodeSpec::volunteer(capacity)
                }
            })
            .collect();
        let _ = seeds; // specs are deterministic; seeds reserved for variants
        Self {
            specs,
            steps,
            base_rate: 3.5,
            amplitude: 2.5,
            period: 600.0,
            schedule: Schedule::none()
                .and(workloads::Disturbance::scale(Tick(steps / 2), 1.4))
                .and(workloads::Disturbance::spike(
                    Tick(steps * 3 / 4),
                    3.0,
                    steps / 20,
                )),
            mean_work: 3.0,
            deadline: 12,
            faults: FaultPlan::none(),
            strategy,
            channel: ChannelPlan::ideal(),
            comms: CommsPolicy::default(),
            command_plane: CommandPlane::Direct,
            mask: InterventionMask::allow_all(),
        }
    }
}

/// Outputs of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scalar metrics (see [`run_scenario`] for keys).
    pub metrics: MetricSet,
    /// Per-tick SLA-violation fraction (bucketable for figures).
    pub violations: TimeSeries,
    /// Per-tick completed-request mean latency.
    pub latency: TimeSeries,
    /// Command-plane protocol events (retries, expiries, partition
    /// hits). Empty under [`CommandPlane::Direct`].
    pub comms_log: ExplanationLog,
}

/// The composite utility goal used to score all cloud strategies:
/// maximise completion ratio, minimise SLA violations, minimise rented
/// cost — the paper's "trade-offs between goals at run time".
#[must_use]
pub fn cloud_goal() -> Goal {
    Goal::new("cloud-qos-vs-cost")
        .objective(Objective::new(
            "completion_ratio",
            Direction::Maximize,
            1.0,
            2.0,
        ))
        .objective(Objective::new(
            "violation_rate",
            Direction::Minimize,
            0.25,
            2.0,
        ))
        .objective(Objective::new("cost_ratio", Direction::Minimize, 1.0, 1.0))
}

/// Runs one scenario. Metric keys produced:
///
/// * `arrived`, `completed` — request counts;
/// * `completion_ratio` — completed / arrived;
/// * `violation_rate` — SLA violations / arrived;
/// * `mean_latency`, `p95_latency` — over completed requests;
/// * `cost_ratio` — rented-node-ticks / (steps × nodes);
/// * `utility` — [`cloud_goal`] composite;
/// * `drift_events` — meta-level detections (0 for baselines).
#[must_use]
pub fn run_scenario(cfg: &ScenarioConfig, seeds: &SeedTree) -> ScenarioResult {
    let n = cfg.specs.len();
    let mut cluster = Cluster::new(cfg.specs.clone(), seeds);
    let mut controller = cfg.strategy.build(n);
    controller.set_mask(cfg.mask);
    let mut rate_fn = DiurnalRate::new(cfg.base_rate, cfg.amplitude, cfg.period);
    let mut arrivals_rng = seeds.rng("arrivals");
    let mut work_rng = seeds.rng("work");
    let mut strat_rng = seeds.rng("strategy");

    let mut arrived = 0u64;
    let mut completed = 0u64;
    let mut violations = 0u64;
    let mut latencies = Percentiles::new();
    let mut lat_sum = 0.0;
    let mut violations_series = TimeSeries::new(cfg.strategy.label());
    let mut latency_series = TimeSeries::new(cfg.strategy.label());
    let mut next_id = 0u64;
    let mut comms_log = ExplanationLog::new(2048);
    let mut plane = match cfg.command_plane {
        CommandPlane::Direct => None,
        CommandPlane::Zoned { zones } => Some(ZonedPlane::new(zones, n, cfg.comms, cfg.mask)),
    };

    // Reused across ticks: outcome pushes land in warm capacity
    // instead of regrowing a fresh vector every tick.
    let mut tick_outcomes: Vec<RequestOutcome> = Vec::new();
    for t in 0..cfg.steps {
        let now = Tick(t);
        tick_outcomes.clear();

        // Phase spans (sense → decide → act) are profiling only —
        // timing never feeds simulation state (see `simkernel::obs`).
        let sense_span = obs::span("cloudsim:sense");

        // Apply scheduled zone outages and model corruptions before
        // the controller observes the cluster.
        for ev in cfg.faults.events_at(now) {
            match ev.kind {
                FaultKind::ZoneOutage {
                    first,
                    count,
                    duration,
                } => {
                    let until = Tick(t + duration);
                    tick_outcomes.extend(cluster.force_outage(first, count, until, now));
                }
                FaultKind::ModelCorruption { kind, .. } => {
                    controller.inject_model_corruption(kind, now);
                }
                _ => {}
            }
        }

        let rate = cfg.schedule.apply(rate_fn.rate(now), now);
        let count = poisson(rate, &mut arrivals_rng);
        drop(sense_span);
        let decide_span = obs::span("cloudsim:decide");
        match &mut plane {
            None => controller.begin_tick(&mut cluster, count, now, &mut strat_rng),
            Some(p) => {
                let desired = controller.desired_pool(&cluster, count, now);
                p.tick(
                    desired,
                    &mut cluster,
                    &cfg.channel,
                    &cfg.faults,
                    now,
                    &mut comms_log,
                );
            }
        }
        drop(decide_span);
        let _act_span = obs::span("cloudsim:act");

        for _ in 0..count {
            use rand::Rng as _;
            arrived += 1;
            let u: f64 = work_rng.gen::<f64>();
            let work = -cfg.mean_work * u.max(1e-12).ln();
            let req = Request::new(next_id, work, now, cfg.deadline);
            next_id += 1;
            match controller.dispatch(&cluster, &req, &mut strat_rng) {
                Some(nodeidx) => {
                    if let Some(fail) = cluster.dispatch(nodeidx, req, now) {
                        tick_outcomes.push(fail);
                    }
                }
                None => tick_outcomes.push(RequestOutcome::Rejected {
                    request: req,
                    at: now,
                }),
            }
        }
        cluster.step_into(now, &mut tick_outcomes);

        let mut tick_viol = 0u64;
        let tick_total = tick_outcomes.len();
        for outcome in &tick_outcomes {
            controller.feedback(outcome, now);
            if outcome.violates_sla() {
                violations += 1;
                tick_viol += 1;
            }
            if let Some(lat) = outcome.latency() {
                completed += 1;
                latencies.push(lat as f64);
                lat_sum += lat as f64;
            }
        }
        if tick_total > 0 {
            violations_series.push(now, tick_viol as f64 / tick_total as f64);
        }
        if let Some(RequestOutcome::Completed { latency, .. }) =
            tick_outcomes.iter().find(|o| o.completed())
        {
            latency_series.push(now, *latency as f64);
        }
    }

    let mut metrics = MetricSet::new();
    let arrived_f = arrived.max(1) as f64;
    metrics.set("arrived", arrived as f64);
    metrics.set("completed", completed as f64);
    metrics.set("completion_ratio", completed as f64 / arrived_f);
    metrics.set("violation_rate", violations as f64 / arrived_f);
    metrics.set(
        "mean_latency",
        if completed > 0 {
            lat_sum / completed as f64
        } else {
            0.0
        },
    );
    metrics.set("p95_latency", latencies.p95().unwrap_or(0.0));
    metrics.set(
        "cost_ratio",
        cluster.rented_node_ticks() as f64 / (cfg.steps.max(1) * n as u64) as f64,
    );
    metrics.set("drift_events", f64::from(controller.drift_events()));
    let sup = controller.supervision_stats().unwrap_or_default();
    metrics.set("model_rollbacks", f64::from(sup.rollbacks));
    metrics.set("model_fallbacks", f64::from(sup.fallbacks));
    metrics.set("model_repromotions", f64::from(sup.repromotions));
    let cs: CommsStats = plane.as_ref().map(|p| p.net.stats()).unwrap_or_default();
    metrics.set("comms_sent", cs.sent as f64);
    metrics.set("comms_retries", cs.retries as f64);
    metrics.set("comms_expired", cs.expired as f64);
    metrics.set("comms_partition_hits", cs.partition_hits as f64);
    metrics.set("comms_duplicates", cs.duplicates as f64);
    let utility = cloud_goal().utility(|k| metrics.get(k));
    metrics.set("utility", utility);

    ScenarioResult {
        metrics,
        violations: violations_series,
        latency: latency_series,
        comms_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfaware::levels::LevelSet;

    fn run(strategy: Strategy, seed: u64, steps: u64) -> ScenarioResult {
        let seeds = SeedTree::new(seed);
        let cfg = ScenarioConfig::standard(strategy, steps, &seeds);
        run_scenario(&cfg, &seeds)
    }

    #[test]
    fn scenario_produces_sane_metrics() {
        let r = run(Strategy::LeastLoaded, 1, 1500);
        let m = &r.metrics;
        assert!(m.get("arrived").unwrap() > 1000.0);
        let cr = m.get("completion_ratio").unwrap();
        assert!((0.3..=1.0).contains(&cr), "completion ratio {cr}");
        let vr = m.get("violation_rate").unwrap();
        assert!((0.0..=1.0).contains(&vr));
        assert!(m.get("p95_latency").unwrap() >= m.get("mean_latency").unwrap() * 0.5);
        assert!(m.get("utility").is_some());
        assert!(!r.violations.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(Strategy::RoundRobin, 9, 500);
        let b = run(Strategy::RoundRobin, 9, 500);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(Strategy::RoundRobin, 1, 500);
        let b = run(Strategy::RoundRobin, 2, 500);
        assert_ne!(
            a.metrics.get("completed"),
            b.metrics.get("completed"),
            "distinct seeds should give distinct sample paths"
        );
    }

    #[test]
    fn self_aware_beats_random_on_utility() {
        // The paper's central hypothesis, in miniature.
        let mut sa_wins = 0;
        for seed in 0..3 {
            let sa = run(
                Strategy::SelfAware {
                    levels: LevelSet::full(),
                },
                seed,
                2000,
            );
            let rnd = run(Strategy::Random, seed, 2000);
            if sa.metrics.get("utility") > rnd.metrics.get("utility") {
                sa_wins += 1;
            }
        }
        assert!(sa_wins >= 2, "self-aware won {sa_wins}/3 seeds");
    }

    #[test]
    fn self_aware_cheaper_than_rent_all_baselines() {
        let sa = run(
            Strategy::SelfAware {
                levels: LevelSet::full(),
            },
            4,
            2000,
        );
        let ll = run(Strategy::LeastLoaded, 4, 2000);
        assert!(
            sa.metrics.get("cost_ratio").unwrap() < ll.metrics.get("cost_ratio").unwrap(),
            "autoscaling should cut rented cost"
        );
    }

    #[test]
    fn zone_outage_costs_completions_but_run_survives() {
        use workloads::faults::FaultEvent;
        let steps = 2000;
        let faulty = |seed: u64| {
            let seeds = SeedTree::new(seed);
            let mut cfg = ScenarioConfig::standard(Strategy::LeastLoaded, steps, &seeds);
            // Take out half the pool for a fifth of the run, twice.
            cfg.faults = FaultPlan::none()
                .and(FaultEvent::zone_outage(Tick(steps / 4), 0, 6, steps / 5))
                .and(FaultEvent::zone_outage(
                    Tick(3 * steps / 4),
                    6,
                    6,
                    steps / 5,
                ));
            run_scenario(&cfg, &seeds)
        };
        let f = faulty(3);
        let h = run(Strategy::LeastLoaded, 3, steps);
        let cr_f = f.metrics.get("completion_ratio").unwrap();
        let cr_h = h.metrics.get("completion_ratio").unwrap();
        assert!(
            cr_f < cr_h,
            "outages must cost completions: {cr_f} vs {cr_h}"
        );
        assert!(cr_f > 0.2, "the run must survive the outages: {cr_f}");
        // Deterministic per seed.
        assert_eq!(faulty(3).metrics, f.metrics);
    }

    #[test]
    fn supervised_controller_survives_model_corruption() {
        use workloads::faults::{FaultEvent, ModelCorruptionKind};
        let steps = 2500;
        let plan = FaultPlan::none()
            .and(FaultEvent::model_corruption(
                Tick(steps / 3),
                0,
                ModelCorruptionKind::NanPoison,
            ))
            .and(FaultEvent::model_corruption(
                Tick(2 * steps / 3),
                0,
                ModelCorruptionKind::WeightScramble { gain: 40.0 },
            ));
        let run_arm = |strategy: Strategy| {
            let seeds = SeedTree::new(11);
            let mut cfg = ScenarioConfig::standard(strategy, steps, &seeds);
            cfg.faults = plan.clone();
            run_scenario(&cfg, &seeds)
        };
        let sup = run_arm(Strategy::SupervisedSelfAware {
            levels: LevelSet::full(),
        });
        let m = &sup.metrics;
        // The watchdog must have acted on the injected corruption and
        // the run must stay serviceable.
        assert!(
            m.get("model_rollbacks").unwrap() + m.get("model_fallbacks").unwrap() >= 1.0,
            "supervisor never intervened: {m:?}"
        );
        assert!(
            m.get("completion_ratio").unwrap() > 0.3,
            "supervised run collapsed: {m:?}"
        );
        // Deterministic per seed, including the supervision path.
        assert_eq!(
            run_arm(Strategy::SupervisedSelfAware {
                levels: LevelSet::full(),
            })
            .metrics,
            sup.metrics
        );
    }

    /// A zoned scenario with headroom: 18 nodes in 3 zones, demand
    /// sized so the ×2 spike needs ~13 of 18 nodes — leaving fresh
    /// zones with room to absorb a partitioned zone's shortfall.
    fn zoned_cfg(
        comms: CommsPolicy,
        loss: f64,
        partition: Option<(u64, u64)>,
        seed: u64,
        steps: u64,
    ) -> (ScenarioConfig, SeedTree) {
        use workloads::faults::LinkModel;
        let seeds = SeedTree::new(seed);
        // Stimulus+time only: goal-level safety adaptation would
        // partially mask command loss by re-renting reachable zones
        // whenever violations rise, so it is switched off to measure
        // the command plane itself.
        let mut cfg = ScenarioConfig::standard(
            Strategy::SelfAware {
                levels: LevelSet::new()
                    .with(selfaware::levels::Level::Stimulus)
                    .with(selfaware::levels::Level::Time),
            },
            steps,
            &seeds,
        );
        cfg.specs = (0..18)
            .map(|i| {
                let capacity = 1.0 + (i % 4) as f64;
                if i % 3 == 0 {
                    NodeSpec::reliable(capacity)
                } else {
                    NodeSpec::volunteer(capacity)
                }
            })
            .collect();
        cfg.base_rate = 2.2;
        cfg.amplitude = 0.2;
        cfg.schedule = Schedule::none()
            .and(workloads::Disturbance::scale(Tick(steps / 2), 1.4))
            .and(workloads::Disturbance::spike(
                Tick(steps * 3 / 4),
                3.0,
                steps / 5,
            ));
        let mut plan = ChannelPlan::uniform(&SeedTree::new(seed ^ 0xC10D), LinkModel::lossy(loss));
        if let Some((start, duration)) = partition {
            plan = plan.with_partition(start, duration, vec![2]);
        }
        cfg.channel = plan;
        cfg.comms = comms;
        cfg.command_plane = CommandPlane::Zoned { zones: 3 };
        (cfg, seeds)
    }

    #[test]
    fn zoned_plane_on_ideal_channel_still_autoscales() {
        let (mut cfg, seeds) = zoned_cfg(CommsPolicy::default(), 0.0, None, 21, 2000);
        cfg.channel = ChannelPlan::ideal();
        let r = run_scenario(&cfg, &seeds);
        let m = &r.metrics;
        assert!(
            m.get("cost_ratio").unwrap() < 0.95,
            "zoned plane never released capacity: {m:?}"
        );
        assert!(
            m.get("completion_ratio").unwrap() > 0.5,
            "zoned plane starved the pool: {m:?}"
        );
        // No loss, no partitions → nothing to retry or expire.
        assert_eq!(m.get("comms_expired"), Some(0.0));
        assert_eq!(m.get("comms_partition_hits"), Some(0.0));
    }

    #[test]
    fn lossy_zoned_run_is_deterministic_and_retries() {
        let (cfg, seeds) = zoned_cfg(CommsPolicy::default(), 0.3, None, 13, 1500);
        let a = run_scenario(&cfg, &seeds);
        let b = run_scenario(&cfg, &seeds);
        assert_eq!(a.metrics, b.metrics);
        assert!(
            a.metrics.get("comms_retries").unwrap() > 0.0,
            "30% loss must force retransmissions: {:?}",
            a.metrics
        );
        assert!(
            !a.comms_log.find_by_action("comms:retry").is_empty(),
            "retries must be explained in the comms log"
        );
    }

    #[test]
    fn staleness_aware_command_plane_beats_naive_under_partition() {
        let steps = 3000;
        // Isolate zone 2 from tick 2150 to the end of the run; the ×3
        // demand spike runs 2250..2850, so the zone is pinned at its
        // low pre-spike rent target for all of it.
        let partition = Some((2150, 850));
        let mut aware_wins = 0;
        for seed in [5u64, 6, 7] {
            let (cfg_a, seeds_a) = zoned_cfg(CommsPolicy::default(), 0.25, partition, seed, steps);
            let (cfg_n, seeds_n) = zoned_cfg(CommsPolicy::Naive, 0.25, partition, seed, steps);
            let aware = run_scenario(&cfg_a, &seeds_a);
            let naive = run_scenario(&cfg_n, &seeds_n);
            assert!(
                aware.metrics.get("comms_partition_hits").unwrap() > 0.0,
                "partition never bit: {:?}",
                aware.metrics
            );
            if aware.metrics.get("utility") > naive.metrics.get("utility") {
                aware_wins += 1;
            }
            if seed == 5 {
                // Abandoned commands (retry budget burned against the
                // partition) must be explained; the partition-onset
                // entry itself is checked in the short test below,
                // where later traffic cannot evict it from the ring.
                assert!(
                    !aware.comms_log.find_by_action("comms:expire").is_empty(),
                    "abandoned sends must be explained"
                );
            }
        }
        assert!(
            aware_wins >= 2,
            "staleness-aware won only {aware_wins}/3 seeds"
        );
    }

    #[test]
    fn partition_onset_reaches_the_comms_log() {
        // Loss-free channel, so the ring holds only partition-era
        // protocol traffic and the onset entry survives to the end.
        let (cfg, seeds) = zoned_cfg(CommsPolicy::default(), 0.0, Some((1200, 100)), 17, 1500);
        let r = run_scenario(&cfg, &seeds);
        assert!(r.metrics.get("comms_partition_hits").unwrap() > 0.0);
        assert!(
            !r.comms_log.find_by_action("comms:partition").is_empty(),
            "partition onset must be explained"
        );
    }

    /// Drives a [`ZonedPlane`] directly over 6 reliable nodes in 3
    /// zones (2 nodes each; zone 1 owns nodes 2..4, comms agent id 1,
    /// controller id 3). Returns every `(tick, new_applied)` change of
    /// zone 1's applied target, so the overlap tests can pin down
    /// exactly *when* delivery to that zone resumes.
    ///
    /// `desired(t)` drives the total rent target; `outage` is an
    /// `(at, duration)` [`FaultKind::ZoneOutage`] over nodes 2..4;
    /// `partition` is an `(at, duration)` [`NetPartition`] isolating
    /// comms node 1.
    fn zone1_applied_history(
        desired: impl Fn(u64) -> usize,
        outage: Option<(u64, u64)>,
        partition: Option<(u64, u64)>,
        steps: u64,
    ) -> Vec<(u64, usize)> {
        use workloads::faults::FaultEvent;
        let seeds = SeedTree::new(99);
        let specs: Vec<NodeSpec> = (0..6).map(|_| NodeSpec::reliable(1.0)).collect();
        let mut cluster = Cluster::new(specs, &seeds);
        let mut plan = ChannelPlan::ideal();
        if let Some((at, duration)) = partition {
            plan = plan.with_partition(at, duration, vec![1]);
        }
        let mut faults = FaultPlan::none();
        if let Some((at, duration)) = outage {
            faults = faults.and(FaultEvent::zone_outage(Tick(at), 2, 2, duration));
        }
        let mut plane =
            ZonedPlane::new(3, 6, CommsPolicy::default(), InterventionMask::allow_all());
        let mut log = ExplanationLog::new(64);
        let mut history = vec![(0, plane.applied[1])];
        for t in 0..steps {
            plane.tick(
                Some(desired(t)),
                &mut cluster,
                &plan,
                &faults,
                Tick(t),
                &mut log,
            );
            if plane.applied[1] != history[history.len() - 1].1 {
                history.push((t, plane.applied[1]));
            }
        }
        history
    }

    /// Asserts zone 1's applied target never changes inside
    /// `quiet` and changes to `expect` within `window`.
    fn assert_resumes_in(
        history: &[(u64, usize)],
        quiet: std::ops::Range<u64>,
        window: std::ops::Range<u64>,
        expect: usize,
    ) {
        assert!(
            !history.iter().any(|&(t, _)| quiet.contains(&t)),
            "delivery resurrected inside {quiet:?}: {history:?}"
        );
        assert!(
            history
                .iter()
                .any(|&(t, v)| window.contains(&t) && v == expect),
            "applied never became {expect} in {window:?}: {history:?}"
        );
    }

    // Overlap matrix for ZoneOutage × NetPartition restore ordering.
    // Zone 1 (nodes 2..4) starts with applied target 2; the desired
    // total drops 6 → 3 at tick 250, so its new target is 1. The
    // commanding question in each case: when is that 1 allowed to
    // land? Never while the zone is dead, never while the partition
    // cuts the link — only after *both* windows have closed.

    #[test]
    fn partition_heal_inside_outage_does_not_resurrect_dead_zone() {
        // Outage [200,400), partition [150,300): the heal at 300
        // re-opens the link while nobody is home; delivery must wait
        // for the outage to lift at 400.
        let h = zone1_applied_history(
            |t| if t < 250 { 6 } else { 3 },
            Some((200, 200)),
            Some((150, 150)),
            600,
        );
        assert_resumes_in(&h, 150..400, 400..520, 1);
    }

    #[test]
    fn outage_inside_partition_waits_for_the_heal() {
        // Outage [200,300) nested in partition [150,400): the zone
        // comes back at 300 but stays unreachable until the heal.
        let h = zone1_applied_history(
            |t| if t < 250 { 6 } else { 3 },
            Some((200, 100)),
            Some((150, 250)),
            600,
        );
        assert_resumes_in(&h, 150..400, 400..520, 1);
    }

    #[test]
    fn staggered_overlap_waits_for_the_later_window() {
        // Partition [150,250) then outage [200,400): windows overlap
        // in [200,250); delivery resumes only after the outage.
        let h = zone1_applied_history(
            |t| if t < 250 { 6 } else { 3 },
            Some((200, 200)),
            Some((150, 100)),
            600,
        );
        assert_resumes_in(&h, 150..400, 400..520, 1);
    }

    #[test]
    fn disjoint_windows_each_block_alone() {
        // Partition [150,200) blocks the 6→3 command issued at 160;
        // it lands after the heal, inside [200,300). A second switch
        // (3→6) at 320 falls inside the outage [300,400) and lands
        // only after it lifts.
        let h = zone1_applied_history(
            |t| {
                if t < 160 {
                    6
                } else if t < 320 {
                    3
                } else {
                    6
                }
            },
            Some((300, 100)),
            Some((150, 50)),
            600,
        );
        assert_resumes_in(&h, 150..200, 200..300, 1);
        assert_resumes_in(&h, 300..400, 400..520, 2);
    }

    #[test]
    fn dead_zone_burns_retry_budget_on_its_links() {
        // While zone 1 is dead its agent sends nothing, and the
        // controller's re-issues die on the silenced link: the retry
        // budget burns out and the per-link expiry counters must
        // attribute the loss to ctrl(3)→agent(1).
        use selfaware::comms::ReliableConfig;
        use workloads::faults::FaultEvent;
        let seeds = SeedTree::new(7);
        let specs: Vec<NodeSpec> = (0..6).map(|_| NodeSpec::reliable(1.0)).collect();
        let mut cluster = Cluster::new(specs, &seeds);
        let plan = ChannelPlan::ideal();
        let faults = FaultPlan::none().and(FaultEvent::zone_outage(Tick(100), 2, 2, 300));
        // Generous timeout so the retry *budget* is what gives up.
        let policy = CommsPolicy::Reliable(ReliableConfig {
            send_timeout: 10_000,
            ..ReliableConfig::default()
        });
        let mut plane = ZonedPlane::new(3, 6, policy, InterventionMask::allow_all());
        let mut log = ExplanationLog::new(64);
        for t in 0..420 {
            let desired = if t < 150 { 6 } else { 3 };
            plane.tick(
                Some(desired),
                &mut cluster,
                &plan,
                &faults,
                Tick(t),
                &mut log,
            );
        }
        let stats = plane.net.stats_ref();
        assert!(
            stats.link_budget_exhausted(3, 1) >= 1,
            "ctrl→dead-zone sends must exhaust their retry budget: {stats:?}"
        );
        assert_eq!(
            stats.link_expired(3, 0),
            0,
            "live zones must not expire anything: {stats:?}"
        );
    }

    #[test]
    #[ignore]
    fn probe_zoned_arms() {
        let steps = 3000;
        let partition = Some((2150, 850));
        for seed in [5u64, 6, 7] {
            for (name, policy) in [
                ("aware", CommsPolicy::default()),
                ("naive", CommsPolicy::Naive),
            ] {
                let (cfg, seeds) = zoned_cfg(policy, 0.25, partition, seed, steps);
                let m = run_scenario(&cfg, &seeds).metrics;
                println!(
                    "seed {seed} {name}: util {:.4} compl {:.4} viol {:.4} cost {:.4} retries {} expired {} part {}",
                    m.get("utility").unwrap(),
                    m.get("completion_ratio").unwrap(),
                    m.get("violation_rate").unwrap(),
                    m.get("cost_ratio").unwrap(),
                    m.get("comms_retries").unwrap(),
                    m.get("comms_expired").unwrap(),
                    m.get("comms_partition_hits").unwrap(),
                );
            }
        }
    }

    #[test]
    fn cloud_goal_prefers_good_outcomes() {
        let g = cloud_goal();
        let good = g.utility(|k| match k {
            "completion_ratio" => Some(0.98),
            "violation_rate" => Some(0.01),
            "cost_ratio" => Some(0.4),
            _ => None,
        });
        let bad = g.utility(|k| match k {
            "completion_ratio" => Some(0.6),
            "violation_rate" => Some(0.3),
            "cost_ratio" => Some(1.0),
            _ => None,
        });
        assert!(good > bad);
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use selfaware::levels::LevelSet;

    #[test]
    #[ignore]
    fn print_t1_metrics() {
        for strategy in [
            Strategy::Random,
            Strategy::RoundRobin,
            Strategy::LeastLoaded,
            Strategy::SelfAware {
                levels: LevelSet::full(),
            },
        ] {
            let mut u = 0.0;
            let mut v = 0.0;
            let mut c = 0.0;
            let mut comp = 0.0;
            for seed in 0..3u64 {
                let seeds = SeedTree::new(seed);
                let cfg = ScenarioConfig::standard(strategy.clone(), 6000, &seeds);
                let m = run_scenario(&cfg, &seeds).metrics;
                u += m.get("utility").unwrap() / 3.0;
                v += m.get("violation_rate").unwrap() / 3.0;
                c += m.get("cost_ratio").unwrap() / 3.0;
                comp += m.get("completion_ratio").unwrap() / 3.0;
            }
            println!(
                "{:<14} util {u:.3} viol {v:.3} cost {c:.3} compl {comp:.3}",
                strategy.label()
            );
        }
    }
}

#[cfg(test)]
mod probe_ablation {
    use super::*;
    use selfaware::levels::{Level, LevelSet};

    #[test]
    #[ignore]
    fn print_t2_ladder() {
        let ladder = [
            ("none", LevelSet::new()),
            ("+stimulus", LevelSet::new().with(Level::Stimulus)),
            (
                "+time",
                LevelSet::new().with(Level::Stimulus).with(Level::Time),
            ),
            (
                "+goal",
                LevelSet::new()
                    .with(Level::Stimulus)
                    .with(Level::Time)
                    .with(Level::Goal),
            ),
            ("full(+meta)", LevelSet::full()),
        ];
        for (name, levels) in ladder {
            let mut u = 0.0;
            let mut v = 0.0;
            let mut c = 0.0;
            for seed in 0..3u64 {
                let seeds = SeedTree::new(seed);
                let cfg = ScenarioConfig::standard(Strategy::SelfAware { levels }, 6000, &seeds);
                let m = run_scenario(&cfg, &seeds).metrics;
                u += m.get("utility").unwrap() / 3.0;
                v += m.get("violation_rate").unwrap() / 3.0;
                c += m.get("cost_ratio").unwrap() / 3.0;
            }
            println!("{name:<12} util {u:.3} viol {v:.3} cost {c:.3}");
        }
    }
}
