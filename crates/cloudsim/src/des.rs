//! Event-driven volunteer cloud at trace scale (experiment F12).
//!
//! The T1/T2 cluster loop visits every node every tick — churn step,
//! process step — which caps runs at tens of nodes. This module hosts
//! the F12 trace world on [`simkernel::SimScheduler`]: a node is
//! visited only when
//!
//! * its next stochastic churn transition falls due (a `wake_at`
//!   planted when the previous transition fired — churn is sampled as
//!   a *geometric gap to the next flip* instead of a Bernoulli coin
//!   every tick, so an idle node costs nothing),
//! * a zone-outage fault edge falls due (planted up front by
//!   [`workloads::faults::FaultPlan::schedule_wakes`] — fault plans
//!   schedule wake events, they are never polled), or
//! * work arrived or remains queued (a dirty-input wake at dispatch,
//!   a self re-wake at `now + 1` while the queue is non-empty).
//!
//! ## Dense-vs-sparse equivalence
//!
//! The legacy dense loop stays selectable via
//! [`simkernel::DriveMode::Dense`]. Both modes share every RNG draw
//! site: per-node churn streams are sampled *only* at transition
//! ticks (dense compares a precomputed `next_churn`, sparse wakes at
//! it — the draws are identical), and arrivals come from one
//! tick-major stream. All aggregates are integer counters until the
//! final division, so simulation metrics are bit-identical across
//! modes; only wall-clock and [`simkernel::ActivationStats`] differ.

use rand::Rng as _;
use simkernel::rng::{Rng, SeedTree};
use simkernel::{ActivationStats, DriveMode, MetricSet, SimScheduler, Tick, WakeDedup};
use std::collections::VecDeque;
use workloads::faults::{FaultKind, FaultPlan};

/// Priority class for zone-outage fault edges (applied first).
pub const CLASS_FAULT: u8 = 0;
/// Priority class for churn transitions (before dispatch).
pub const CLASS_CHURN: u8 = 1;
/// Priority class for node work visits (after dispatch).
pub const CLASS_NODE: u8 = 2;

/// Latency histogram width; latencies at or beyond this land in the
/// overflow bucket (they are far past any deadline anyway).
const LATENCY_BUCKETS: usize = 4096;

/// Configuration of an F12-scale request-trace scenario.
#[derive(Debug, Clone)]
pub struct DesCloudConfig {
    /// Node count (16 384 for the headline F12 arm).
    pub nodes: usize,
    /// Per-node capacity is drawn uniformly from this range at setup.
    pub cap_range: (f64, f64),
    /// Probability per tick of an online node going offline
    /// (materialised as geometric gaps, see module docs).
    pub churn_off: f64,
    /// Probability per tick of an offline node coming back.
    pub churn_on: f64,
    /// Mean request arrivals per tick (Poisson).
    pub rate: f64,
    /// Request work is drawn uniformly from this range.
    pub work_range: (f64, f64),
    /// Latency SLA in ticks; completions above it count as violations.
    pub deadline: u64,
    /// Simulation length in ticks (`steps × rate` ≈ trace size).
    pub steps: u64,
    /// Scheduled faults (`ZoneOutage`; other kinds are ignored).
    pub faults: FaultPlan,
    /// Dense (legacy, equivalence baseline) or sparse (DES) driving.
    pub drive: DriveMode,
}

impl DesCloudConfig {
    /// A scenario sized for `nodes` nodes over `steps` ticks at
    /// `rate` requests per tick.
    #[must_use]
    pub fn at_scale(nodes: usize, steps: u64, rate: f64) -> Self {
        Self {
            nodes,
            cap_range: (0.5, 2.5),
            churn_off: 0.001,
            churn_on: 0.01,
            rate,
            work_range: (0.5, 2.0),
            deadline: 30,
            steps,
            faults: FaultPlan::none(),
            drive: DriveMode::Sparse,
        }
    }
}

/// Outputs of an F12 trace run.
#[derive(Debug, Clone)]
pub struct DesCloudResult {
    /// Simulation metrics — bit-identical across [`DriveMode`]s:
    ///
    /// * `arrived` / `completed` / `lost` / `in_flight` — request
    ///   conservation (`arrived = completed + lost + in_flight`);
    /// * `completion_ratio` — `completed / arrived`;
    /// * `violation_rate` — completions past the deadline, over
    ///   completions;
    /// * `mean_latency` / `p95_latency` — queueing + service ticks;
    /// * `utility` — `completion_ratio − violation_rate`.
    pub metrics: MetricSet,
    /// Activation accounting (differs across modes by design).
    pub perf: ActivationStats,
}

struct DesNode {
    cap: f64,
    online: bool,
    forced: bool,
    /// Tick of the next stochastic churn transition (`u64::MAX` =
    /// never, when the corresponding probability is zero).
    next_churn: u64,
    /// (arrival tick, remaining work) FIFO.
    queue: VecDeque<(u64, f64)>,
    /// Per-node churn RNG stream — sampled only at transition ticks.
    rng: Rng,
    /// Last tick this node's work visit ran (dedupes the self re-wake
    /// against same-tick dirty-input wakes). `u64::MAX` = never.
    last_visit: u64,
}

/// Ticks until the next success of a Bernoulli(`p`) process, sampled
/// by inverting the geometric CDF — one draw replaces `gap` per-tick
/// coin flips while following the exact same distribution.
fn geometric_gap(p: f64, rng: &mut Rng) -> u64 {
    if p <= 0.0 {
        return u64::MAX;
    }
    if p >= 1.0 {
        return 1;
    }
    let u: f64 = rng.gen();
    let g = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        (g as u64).saturating_add(1)
    }
}

/// Runs an F12 trace scenario (see [`DesCloudResult`] for metric
/// keys).
///
/// # Panics
///
/// Panics if the configuration has no nodes.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_des_cloud(cfg: &DesCloudConfig, seeds: &SeedTree) -> DesCloudResult {
    let n = cfg.nodes;
    assert!(n >= 1, "need at least one node");
    let sparse = cfg.drive == DriveMode::Sparse;

    let mut sched: SimScheduler<usize> = SimScheduler::new();

    // Setup draws happen in a fixed order (caps, then per-node churn
    // streams, then the initial transition gaps) so both drive modes
    // consume identical randomness.
    let mut cap_rng = seeds.rng("caps");
    let mut nodes: Vec<DesNode> = (0..n)
        .map(|i| DesNode {
            cap: cap_rng.gen_range(cfg.cap_range.0..cfg.cap_range.1),
            online: true,
            forced: false,
            next_churn: u64::MAX,
            queue: VecDeque::new(),
            rng: seeds.rng(&format!("churn/{i}")),
            last_visit: u64::MAX,
        })
        .collect();
    for (i, node) in nodes.iter_mut().enumerate() {
        let gap = geometric_gap(cfg.churn_off, &mut node.rng);
        node.next_churn = gap;
        if sparse && gap != u64::MAX {
            sched.wake_at(Tick(gap), CLASS_CHURN, i);
        }
    }

    // Zone-outage wiring: per-node forced intervals, with the onset
    // and repair edges planted as fault-class wakes in BOTH modes.
    let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    for ev in cfg.faults.events() {
        if let FaultKind::ZoneOutage {
            first,
            count,
            duration,
        } = ev.kind
        {
            for spans in intervals
                .iter_mut()
                .take((first + count).min(n))
                .skip(first)
            {
                spans.push((ev.at.value(), ev.at.value().saturating_add(duration)));
            }
        }
    }
    cfg.faults
        .schedule_wakes(&mut sched, CLASS_FAULT, |ev, keys| {
            if let FaultKind::ZoneOutage { first, count, .. } = ev.kind {
                keys.extend(first..(first + count).min(n));
            }
        });
    let mut dirty = WakeDedup::new(n);

    let mut arr_rng = seeds.rng("arrivals");
    let poisson_floor = (-cfg.rate).exp();
    let mut cursor = 0usize;

    let mut arrived = 0u64;
    let mut completed = 0u64;
    let mut lost = 0u64;
    let mut violations = 0u64;
    let mut latency_sum = 0u64;
    let mut latency_hist = vec![0u64; LATENCY_BUCKETS + 1];
    let mut perf = ActivationStats {
        entity_ticks: n as u64 * cfg.steps,
        ..ActivationStats::default()
    };

    for t in 0..cfg.steps {
        let now = Tick(t);
        sched.advance(now);

        // 1. Fault edges, then (sparse) churn transitions — everything
        // due before dispatch, stopping at the node-visit class.
        while sched
            .peek()
            .is_some_and(|(at, c)| at <= now && c <= CLASS_CHURN)
        {
            let Some((_, class, i)) = sched.pop_due(now) else {
                break;
            };
            perf.wakes += 1;
            match class {
                CLASS_FAULT => {
                    let node = &mut nodes[i];
                    let was_forced = node.forced;
                    node.forced = intervals[i].iter().any(|&(s, e)| s <= t && t < e);
                    if node.forced && node.online {
                        node.online = false;
                        lost += node.queue.len() as u64;
                        node.queue.clear();
                    } else if !node.forced && was_forced {
                        // Deterministic repair at the outage deadline.
                        node.online = true;
                    }
                }
                _ => churn_transition(&mut nodes[i], t, cfg, &mut lost, sparse, &mut sched, i),
            }
        }
        if !sparse {
            // Dense churn: scan every node for a due transition. The
            // comparison is against the same precomputed `next_churn`
            // the sparse wake fires at, so the draws are identical.
            for (i, node) in nodes.iter_mut().enumerate() {
                if node.next_churn == t {
                    churn_transition(node, t, cfg, &mut lost, sparse, &mut sched, i);
                }
            }
        }

        // 2. Arrivals (Poisson, Knuth) and round-robin dispatch to the
        // first online node; an arrival with no online node is lost.
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= arr_rng.gen::<f64>();
            if p <= poisson_floor {
                break;
            }
            k += 1;
        }
        for _ in 0..k {
            arrived += 1;
            let work = arr_rng.gen_range(cfg.work_range.0..cfg.work_range.1);
            let mut target = None;
            for probe in 0..n {
                let i = (cursor + probe) % n;
                if nodes[i].online {
                    target = Some(i);
                    cursor = (i + 1) % n;
                    break;
                }
            }
            match target {
                Some(i) => {
                    nodes[i].queue.push_back((t, work));
                    if sparse && dirty.mark(i, now) {
                        sched.wake_on_input(CLASS_NODE, i);
                    }
                }
                None => lost += 1,
            }
        }

        // 3. Node work visits. Dense visits every node; sparse drains
        // the node-class wakes (dirty inputs + busy re-wakes, deduped
        // by `last_visit`).
        if sparse {
            while let Some((_, class, i)) = sched.pop_due(now) {
                debug_assert_eq!(class, CLASS_NODE);
                perf.wakes += 1;
                if nodes[i].last_visit == t {
                    continue;
                }
                nodes[i].last_visit = t;
                perf.visits += 1;
                process_visit(
                    &mut nodes[i],
                    t,
                    cfg.deadline,
                    &mut completed,
                    &mut violations,
                    &mut latency_sum,
                    &mut latency_hist,
                );
                if !nodes[i].queue.is_empty() {
                    sched.wake_at(Tick(t + 1), CLASS_NODE, i);
                }
            }
        } else {
            for node in &mut nodes {
                perf.visits += 1;
                process_visit(
                    node,
                    t,
                    cfg.deadline,
                    &mut completed,
                    &mut violations,
                    &mut latency_sum,
                    &mut latency_hist,
                );
            }
        }
    }
    perf.shed = sched.shed_count();

    let in_flight = arrived - completed - lost;
    let completion_ratio = completed as f64 / arrived.max(1) as f64;
    let violation_rate = violations as f64 / completed.max(1) as f64;
    let p95 = {
        let target = completed - completed / 20; // ceil-free 95th count
        let mut cum = 0u64;
        let mut p95 = 0usize;
        for (l, &c) in latency_hist.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                p95 = l;
                break;
            }
        }
        p95 as f64
    };
    let mut metrics = MetricSet::new();
    metrics.set("arrived", arrived as f64);
    metrics.set("completed", completed as f64);
    metrics.set("lost", lost as f64);
    metrics.set("in_flight", in_flight as f64);
    metrics.set("completion_ratio", completion_ratio);
    metrics.set("violation_rate", violation_rate);
    metrics.set("mean_latency", latency_sum as f64 / completed.max(1) as f64);
    metrics.set("p95_latency", p95);
    metrics.set("utility", completion_ratio - violation_rate);

    DesCloudResult { metrics, perf }
}

/// One churn transition for `node` at tick `t`: toggle (unless a
/// forced outage pins the node), then sample the gap to the next
/// transition from the new state's probability. Exactly one RNG draw
/// per transition, in both drive modes.
fn churn_transition(
    node: &mut DesNode,
    t: u64,
    cfg: &DesCloudConfig,
    lost: &mut u64,
    sparse: bool,
    sched: &mut SimScheduler<usize>,
    i: usize,
) {
    if !node.forced {
        if node.online {
            node.online = false;
            *lost += node.queue.len() as u64;
            node.queue.clear();
        } else {
            node.online = true;
        }
    }
    let p = if node.online {
        cfg.churn_off
    } else {
        cfg.churn_on
    };
    let gap = geometric_gap(p, &mut node.rng);
    node.next_churn = t.saturating_add(gap);
    if sparse && node.next_churn != u64::MAX {
        sched.wake_at(Tick(node.next_churn), CLASS_CHURN, i);
    }
}

/// One work visit: spend this tick's capacity on the FIFO queue,
/// recording completions against the SLA.
fn process_visit(
    node: &mut DesNode,
    t: u64,
    deadline: u64,
    completed: &mut u64,
    violations: &mut u64,
    latency_sum: &mut u64,
    latency_hist: &mut [u64],
) {
    if !node.online || node.queue.is_empty() {
        return;
    }
    let mut budget = node.cap;
    while budget > 0.0 {
        let Some(&mut (arrived_at, ref mut remaining)) = node.queue.front_mut() else {
            break;
        };
        if *remaining <= budget {
            budget -= *remaining;
            node.queue.pop_front();
            *completed += 1;
            let latency = t.saturating_sub(arrived_at).max(1);
            *latency_sum += latency;
            latency_hist[(latency as usize).min(LATENCY_BUCKETS)] += 1;
            if latency > deadline {
                *violations += 1;
            }
        } else {
            *remaining -= budget;
            budget = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::faults::FaultEvent;

    fn run(cfg: &DesCloudConfig, seed: u64) -> DesCloudResult {
        run_des_cloud(cfg, &SeedTree::new(seed))
    }

    fn churny(nodes: usize, steps: u64, rate: f64) -> DesCloudConfig {
        let mut cfg = DesCloudConfig::at_scale(nodes, steps, rate);
        cfg.churn_off = 0.01;
        cfg.churn_on = 0.05;
        cfg
    }

    #[test]
    fn dense_and_sparse_metrics_are_bit_identical() {
        let mut cfg = churny(64, 600, 3.0);
        cfg.faults = FaultPlan::none().and(FaultEvent::zone_outage(Tick(200), 8, 16, 150));
        for seed in [1, 9] {
            cfg.drive = DriveMode::Dense;
            let dense = run(&cfg, seed);
            cfg.drive = DriveMode::Sparse;
            let sparse = run(&cfg, seed);
            assert_eq!(dense.metrics, sparse.metrics);
            assert!(sparse.perf.visits < dense.perf.visits);
        }
    }

    #[test]
    fn requests_are_conserved() {
        let r = run(&churny(128, 800, 4.0), 5);
        let m = |k: &str| r.metrics.get(k).unwrap();
        assert_eq!(m("arrived"), m("completed") + m("lost") + m("in_flight"));
        assert!(m("arrived") > 2000.0);
        assert!(m("completion_ratio") > 0.5);
        assert_eq!(r.perf.shed, 0);
    }

    #[test]
    fn sparse_visit_count_scales_with_load_not_nodes() {
        let small = run(&DesCloudConfig::at_scale(256, 400, 2.0), 7);
        let big = run(&DesCloudConfig::at_scale(4096, 400, 2.0), 7);
        // 16× the nodes, same request load: sparse visits must not
        // grow 16×.
        assert!(
            (big.perf.visits as f64) < 4.0 * small.perf.visits as f64,
            "sparse visits must scale with load: {} vs {}",
            big.perf.visits,
            small.perf.visits
        );
        assert_eq!(big.perf.entity_ticks, 16 * small.perf.entity_ticks);
    }

    #[test]
    fn zone_outage_fires_without_being_polled() {
        // Zero arrivals: nothing ever input-wakes a node, so only the
        // planted fault wakes can flip the zone. The outage must still
        // pin the nodes offline for its window in both modes.
        let mut cfg = DesCloudConfig::at_scale(32, 300, 0.0);
        cfg.churn_off = 0.0; // no stochastic churn either
        cfg.faults = FaultPlan::none().and(FaultEvent::zone_outage(Tick(50), 0, 32, 100));
        for drive in [DriveMode::Dense, DriveMode::Sparse] {
            cfg.drive = drive;
            let r = run(&cfg, 3);
            // No requests → no losses, but the run must complete and
            // the fault machinery must not shed or wedge.
            assert_eq!(r.metrics.get("arrived"), Some(0.0));
            assert_eq!(r.perf.shed, 0);
        }
        // Now with traffic: the outage window must cost requests.
        cfg.rate = 4.0;
        cfg.drive = DriveMode::Sparse;
        let faulty = run(&cfg, 3);
        cfg.faults = FaultPlan::none();
        let healthy = run(&cfg, 3);
        assert!(
            faulty.metrics.get("lost").unwrap() > healthy.metrics.get("lost").unwrap(),
            "a full outage must lose requests"
        );
        assert!(
            faulty.metrics.get("completed").unwrap() > 0.0,
            "nodes must come back after the outage"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = churny(96, 500, 3.0);
        let a = run(&cfg, 42);
        let b = run(&cfg, 42);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.perf, b.perf);
    }

    #[test]
    fn geometric_gap_edge_cases() {
        let mut rng = SeedTree::new(1).rng("gap");
        assert_eq!(geometric_gap(0.0, &mut rng), u64::MAX);
        assert_eq!(geometric_gap(1.0, &mut rng), 1);
        for _ in 0..100 {
            assert!(geometric_gap(0.5, &mut rng) >= 1);
        }
        // Mean of Geometric(p) is 1/p.
        let mean = (0..4000)
            .map(|_| geometric_gap(0.1, &mut rng) as f64)
            .sum::<f64>()
            / 4000.0;
        assert!((mean - 10.0).abs() < 1.0, "geometric mean ≈ 1/p: {mean}");
    }
}
