//! Dense-vs-sparse equivalence for the F12 cloud-trace world.
//!
//! Random churn/outage campaigns must produce **bit-identical**
//! metrics whether every node is visited every tick or only woken
//! nodes are, at 1 worker and at 4 — the seq-vs-parallel contract
//! extended to the DES core.

use cloudsim::des::{run_des_cloud, DesCloudConfig};
use proptest::prelude::*;
use simkernel::{DriveMode, Replications, Tick};
use workloads::faults::{FaultEvent, FaultPlan};

/// A random zone-outage campaign over `nodes` nodes (F9-cascade
/// style: overlapping rack failures allowed).
fn campaign(nodes: usize, steps: u64) -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec(
        (
            0..nodes,
            1..nodes.max(2),
            1..steps.max(2),
            10..steps.max(11),
        ),
        0..4,
    )
    .prop_map(move |outages| {
        let mut plan = FaultPlan::none();
        for (first, count, at, duration) in outages {
            plan = plan.and(FaultEvent::zone_outage(Tick(at), first, count, duration));
        }
        plan
    })
}

fn cfg_with(
    nodes: usize,
    steps: u64,
    rate: f64,
    churn: (f64, f64),
    faults: FaultPlan,
    drive: DriveMode,
) -> DesCloudConfig {
    let mut cfg = DesCloudConfig::at_scale(nodes, steps, rate);
    cfg.churn_off = churn.0;
    cfg.churn_on = churn.1;
    cfg.faults = faults;
    cfg.drive = drive;
    cfg
}

proptest! {

    // Single-replicate bit-identity over random campaigns.
    #[test]
    fn random_campaigns_match_dense_bit_for_bit(
        seed in 0u64..1000,
        nodes in 16usize..80,
        rate in 0.0f64..5.0,
        churn_off in 0.0f64..0.05,
        churn_on in 0.005f64..0.1,
        faults in campaign(80, 300),
    ) {
        let steps = 300;
        let dense = run_des_cloud(
            &cfg_with(nodes, steps, rate, (churn_off, churn_on), faults.clone(), DriveMode::Dense),
            &simkernel::SeedTree::new(seed),
        );
        let sparse = run_des_cloud(
            &cfg_with(nodes, steps, rate, (churn_off, churn_on), faults, DriveMode::Sparse),
            &simkernel::SeedTree::new(seed),
        );
        prop_assert_eq!(dense.metrics, sparse.metrics);
    }

    // Replicate fan-out at 1 and 4 workers agrees across drive
    // modes.
    #[test]
    fn aggregates_are_thread_and_mode_invariant(
        base_seed in 0u64..500,
        faults in campaign(48, 200),
    ) {
        let runs = Replications::new(base_seed, 4);
        let report = |drive: DriveMode, threads: usize| {
            let faults = faults.clone();
            runs.run_par_threads(threads, move |seeds| {
                run_des_cloud(
                    &cfg_with(48, 200, 2.0, (0.01, 0.05), faults.clone(), drive),
                    &seeds,
                )
                .metrics
            })
        };
        let d1 = report(DriveMode::Dense, 1);
        let d4 = report(DriveMode::Dense, 4);
        let s1 = report(DriveMode::Sparse, 1);
        let s4 = report(DriveMode::Sparse, 4);
        prop_assert_eq!(&d1, &d4);
        prop_assert_eq!(&s1, &s4);
        prop_assert_eq!(&d1, &s1);
    }
}
