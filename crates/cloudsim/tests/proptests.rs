//! Property-based tests for the cloud simulator's accounting
//! invariants.

use cloudsim::{Cluster, NodeSpec, Request, RequestOutcome};
use proptest::prelude::*;
use simkernel::{SeedTree, Tick};

fn spec_strategy() -> impl Strategy<Value = NodeSpec> {
    (0.5f64..5.0, 0.0f64..0.05, 0.0f64..0.05, 0.01f64..1.0)
        .prop_map(|(cap, fail, off, on)| NodeSpec::new(cap, fail, off, on))
}

proptest! {
    #[test]
    fn every_request_reaches_exactly_one_terminal_outcome(
        specs in proptest::collection::vec(spec_strategy(), 1..8),
        n_requests in 0u64..100,
        seed in any::<u64>(),
    ) {
        let n = specs.len();
        let mut cluster = Cluster::new(specs, &SeedTree::new(seed));
        let mut rng = SeedTree::new(seed).rng("dispatch");
        use rand::Rng as _;
        let mut outcomes = Vec::new();
        let mut dispatched = 0u64;
        for t in 0..n_requests {
            let req = Request::new(t, rng.gen_range(0.5..5.0), Tick(t), 20);
            let target = rng.gen_range(0..n);
            dispatched += 1;
            if let Some(fail) = cluster.dispatch(target, req, Tick(t)) {
                outcomes.push(fail);
            }
            outcomes.extend(cluster.step(Tick(t)));
        }
        // Drain: give the cluster ample time to finish or lose the rest.
        for t in n_requests..n_requests + 5_000 {
            outcomes.extend(cluster.step(Tick(t)));
            if outcomes.len() as u64 == dispatched {
                break;
            }
        }
        // No request may be double-counted.
        let mut ids: Vec<u64> = outcomes.iter().map(|o| o.request().id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "an outcome was reported twice");
        prop_assert!(outcomes.len() as u64 <= dispatched);
    }

    #[test]
    fn rented_node_ticks_accrue_exactly(
        n in 1usize..10,
        rent in 0usize..10,
        ticks in 0u64..50,
    ) {
        let rent = rent.min(n);
        let specs = vec![NodeSpec::new(1.0, 0.0, 0.0, 1.0); n];
        let mut cluster = Cluster::new(specs, &SeedTree::new(1));
        cluster.rent_first(rent);
        for t in 0..ticks {
            cluster.step(Tick(t));
        }
        prop_assert_eq!(cluster.rented_node_ticks(), rent as u64 * ticks);
    }

    #[test]
    fn completed_latency_respects_capacity(
        capacity in 0.5f64..5.0,
        work in 0.5f64..10.0,
    ) {
        // A single reliable node: completion latency must be at least
        // ceil(work / capacity) and the outcome must arrive.
        let specs = vec![NodeSpec::new(capacity, 0.0, 0.0, 1.0)];
        let mut cluster = Cluster::new(specs, &SeedTree::new(2));
        cluster.dispatch(0, Request::new(0, work, Tick(0), 1_000_000), Tick(0));
        let mut latency = None;
        for t in 0..10_000u64 {
            for o in cluster.step(Tick(t)) {
                latency = o.latency();
            }
            if latency.is_some() {
                break;
            }
        }
        let lat = latency.expect("reliable node must complete");
        let min_ticks = (work / capacity).floor() as u64;
        prop_assert!(lat >= min_ticks.max(1));
    }

    #[test]
    fn violation_classification_is_consistent(
        latency in 1u64..100,
        deadline in 1u64..100,
    ) {
        let req = Request::new(0, 1.0, Tick(0), deadline);
        let outcome = RequestOutcome::Completed {
            request: req,
            at: Tick(latency),
            node: 0,
            latency,
        };
        prop_assert_eq!(outcome.violates_sla(), latency > deadline);
        prop_assert!(outcome.completed());
    }

    #[test]
    fn scenario_metrics_are_internally_consistent(seed in 0u64..20) {
        let seeds = SeedTree::new(seed);
        let cfg = cloudsim::ScenarioConfig::standard(
            cloudsim::Strategy::LeastLoaded,
            600,
            &seeds,
        );
        let m = cloudsim::run_scenario(&cfg, &seeds).metrics;
        let arrived = m.get("arrived").unwrap();
        let completed = m.get("completed").unwrap();
        prop_assert!(completed <= arrived);
        prop_assert!((m.get("completion_ratio").unwrap() - completed / arrived).abs() < 1e-9);
        let vr = m.get("violation_rate").unwrap();
        prop_assert!((0.0..=1.0).contains(&vr));
        let cr = m.get("cost_ratio").unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&cr));
    }
}
