//! Time-varying demand intensities and arrival sampling.

use rand::Rng as _;
use simkernel::rng::Rng;
use simkernel::Tick;

/// A deterministic-in-expectation demand intensity over time.
///
/// Implementations give the *expected* arrivals per tick; actual
/// arrivals are sampled by [`PoissonArrivals`].
pub trait RateFn {
    /// Expected arrivals per tick at time `t`.
    fn rate(&mut self, t: Tick) -> f64;
}

/// Constant rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantRate(pub f64);

impl RateFn for ConstantRate {
    fn rate(&mut self, _t: Tick) -> f64 {
        self.0
    }
}

/// Diurnal (sinusoidal) rate: `base + amplitude · sin(2π t / period)`,
/// floored at zero. The staple "daily cycle" cloud workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalRate {
    /// Mean rate.
    pub base: f64,
    /// Swing around the mean.
    pub amplitude: f64,
    /// Cycle length in ticks.
    pub period: f64,
}

impl DiurnalRate {
    /// Creates a diurnal rate.
    ///
    /// # Panics
    ///
    /// Panics if `base < 0` or `period <= 0`.
    #[must_use]
    pub fn new(base: f64, amplitude: f64, period: f64) -> Self {
        assert!(base >= 0.0, "base rate must be non-negative");
        assert!(period > 0.0, "period must be positive");
        Self {
            base,
            amplitude,
            period,
        }
    }
}

impl RateFn for DiurnalRate {
    fn rate(&mut self, t: Tick) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t.as_f64() / self.period;
        (self.base + self.amplitude * phase.sin()).max(0.0)
    }
}

/// Markov-modulated rate: jumps between `levels` with switch
/// probability `p_switch` per tick. Produces the bursty, regime-y
/// demand the self-aware strategies must chase.
#[derive(Debug, Clone, PartialEq)]
pub struct MmppRate {
    levels: Vec<f64>,
    p_switch: f64,
    current: usize,
    rng: Rng,
    last_t: Option<Tick>,
}

impl MmppRate {
    /// Creates a Markov-modulated rate.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, any level is negative, or
    /// `p_switch ∉ [0, 1]`.
    #[must_use]
    pub fn new(levels: Vec<f64>, p_switch: f64, rng: Rng) -> Self {
        assert!(!levels.is_empty(), "need at least one level");
        assert!(
            levels.iter().all(|&l| l >= 0.0),
            "levels must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&p_switch),
            "switch probability must be in [0,1]"
        );
        Self {
            levels,
            p_switch,
            current: 0,
            rng,
            last_t: None,
        }
    }

    /// Index of the current regime.
    #[must_use]
    pub fn current_level(&self) -> usize {
        self.current
    }
}

impl RateFn for MmppRate {
    fn rate(&mut self, t: Tick) -> f64 {
        // Advance the modulating chain once per new tick.
        if self.last_t != Some(t) {
            self.last_t = Some(t);
            if self.rng.gen::<f64>() < self.p_switch {
                self.current = self.rng.gen_range(0..self.levels.len());
            }
        }
        self.levels[self.current]
    }
}

/// Slowly drifting rate: a bounded random walk. Models the paper's
/// "ongoing change ... in response to external factors".
#[derive(Debug, Clone, PartialEq)]
pub struct DriftingRate {
    value: f64,
    step: f64,
    min: f64,
    max: f64,
    rng: Rng,
    last_t: Option<Tick>,
}

impl DriftingRate {
    /// Creates a drifting rate starting at `start`, stepping by
    /// ±`step` per tick, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if bounds are inverted, `step < 0`, or `start` is out of
    /// bounds.
    #[must_use]
    pub fn new(start: f64, step: f64, min: f64, max: f64, rng: Rng) -> Self {
        assert!(min <= max, "min must not exceed max");
        assert!(step >= 0.0, "step must be non-negative");
        assert!((min..=max).contains(&start), "start must be within bounds");
        Self {
            value: start,
            step,
            min,
            max,
            rng,
            last_t: None,
        }
    }
}

impl RateFn for DriftingRate {
    fn rate(&mut self, t: Tick) -> f64 {
        if self.last_t != Some(t) {
            self.last_t = Some(t);
            let delta = self.rng.gen_range(-self.step..=self.step);
            self.value = (self.value + delta).clamp(self.min, self.max);
        }
        self.value
    }
}

/// Samples per-tick arrival counts from any [`RateFn`] via the Poisson
/// distribution (inverse-CDF sampling; rates here are modest).
///
/// # Example
///
/// ```
/// use workloads::rates::{ConstantRate, PoissonArrivals};
/// use simkernel::{SeedTree, Tick};
///
/// let mut arr = PoissonArrivals::new(ConstantRate(3.0), SeedTree::new(1).rng("arr"));
/// let mut total = 0u64;
/// for t in 0..1000u64 {
///     total += arr.sample(Tick(t)) as u64;
/// }
/// let mean = total as f64 / 1000.0;
/// assert!((mean - 3.0).abs() < 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals<R: RateFn> {
    rate: R,
    rng: Rng,
}

impl<R: RateFn> PoissonArrivals<R> {
    /// Wraps a rate function with a Poisson sampler.
    #[must_use]
    pub fn new(rate: R, rng: Rng) -> Self {
        Self { rate, rng }
    }

    /// Expected rate at `t` (delegates to the rate function).
    pub fn expected(&mut self, t: Tick) -> f64 {
        self.rate.rate(t)
    }

    /// Samples the arrival count for tick `t`.
    pub fn sample(&mut self, t: Tick) -> u32 {
        let lambda = self.rate.rate(t);
        poisson(lambda, &mut self.rng)
    }
}

/// Samples a Poisson(λ) variate. Uses Knuth's product method for
/// λ ≤ 30 and a normal approximation above.
pub fn poisson(lambda: f64, rng: &mut Rng) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation with continuity correction.
        let z: f64 = {
            // Box–Muller from two uniforms.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        return (lambda + lambda.sqrt() * z + 0.5).max(0.0) as u32;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // numeric guard; unreachable for sane λ
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::SeedTree;

    fn rng(label: &str) -> Rng {
        SeedTree::new(101).rng(label)
    }

    #[test]
    fn constant_rate_is_constant() {
        let mut r = ConstantRate(2.5);
        assert_eq!(r.rate(Tick(0)), 2.5);
        assert_eq!(r.rate(Tick(999)), 2.5);
    }

    #[test]
    fn diurnal_oscillates_and_floors() {
        let mut r = DiurnalRate::new(1.0, 2.0, 100.0);
        let peak = r.rate(Tick(25));
        let trough = r.rate(Tick(75));
        assert!(peak > 2.5, "peak {peak}");
        assert_eq!(trough, 0.0, "negative rates floor at zero");
        // Periodicity.
        assert!((r.rate(Tick(10)) - r.rate(Tick(110))).abs() < 1e-9);
    }

    #[test]
    fn mmpp_visits_multiple_levels() {
        let mut r = MmppRate::new(vec![1.0, 10.0, 100.0], 0.05, rng("mmpp"));
        let mut seen = std::collections::HashSet::new();
        for t in 0..2000u64 {
            seen.insert(r.rate(Tick(t)) as u64);
        }
        assert!(seen.len() >= 2, "should visit multiple regimes");
    }

    #[test]
    fn mmpp_rate_stable_within_tick() {
        let mut r = MmppRate::new(vec![1.0, 10.0], 0.9, rng("mmpp2"));
        let a = r.rate(Tick(5));
        let b = r.rate(Tick(5));
        assert_eq!(a, b, "same tick must report the same rate");
    }

    #[test]
    fn drifting_rate_respects_bounds() {
        let mut r = DriftingRate::new(5.0, 1.0, 0.0, 10.0, rng("drift"));
        for t in 0..5000u64 {
            let v = r.rate(Tick(t));
            assert!((0.0..=10.0).contains(&v));
        }
    }

    #[test]
    fn drifting_rate_actually_moves() {
        let mut r = DriftingRate::new(5.0, 0.5, 0.0, 10.0, rng("drift2"));
        let first = r.rate(Tick(0));
        let later = r.rate(Tick(500));
        // A 500-step random walk of step 0.5 almost surely moved.
        let mut moved = (first - later).abs() > 0.5;
        for t in 0..500u64 {
            moved |= (r.rate(Tick(t)) - first).abs() > 0.5;
        }
        assert!(moved);
    }

    #[test]
    fn poisson_mean_and_variance() {
        let mut r = rng("poisson");
        let lambda = 4.0;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| f64::from(poisson(lambda, &mut r))).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
        assert!((var - lambda).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn poisson_large_lambda_normal_branch() {
        let mut r = rng("poisson-big");
        let lambda = 100.0;
        let n = 5000;
        let mean = (0..n)
            .map(|_| f64::from(poisson(lambda, &mut r)))
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut r = rng("poisson0");
        assert_eq!(poisson(0.0, &mut r), 0);
        assert_eq!(poisson(-1.0, &mut r), 0);
    }

    #[test]
    fn arrivals_deterministic_per_seed() {
        let sample = |seed: u64| {
            let mut a = PoissonArrivals::new(ConstantRate(5.0), SeedTree::new(seed).rng("a"));
            (0..50u64).map(|t| a.sample(Tick(t))).collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn diurnal_bad_period_panics() {
        let _ = DiurnalRate::new(1.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "start must be within bounds")]
    fn drifting_bad_start_panics() {
        let _ = DriftingRate::new(20.0, 1.0, 0.0, 10.0, rng("x"));
    }
}
