//! Flow matrices for the cognitive packet network: who talks to whom,
//! at what intensity, and when the intensities surge (congestion or
//! DoS attack, per Gelenbe & Loukas \[39\]).

use serde::{Deserialize, Serialize};
use simkernel::Tick;

/// A single source→destination flow demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source node id.
    pub src: usize,
    /// Destination node id.
    pub dst: usize,
    /// Expected packets per tick.
    pub rate: f64,
}

impl FlowSpec {
    /// Creates a flow.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or `rate < 0`.
    #[must_use]
    pub fn new(src: usize, dst: usize, rate: f64) -> Self {
        assert_ne!(src, dst, "flow endpoints must differ");
        assert!(rate >= 0.0, "rate must be non-negative");
        Self { src, dst, rate }
    }
}

/// A set of flows plus scheduled surge events.
///
/// # Example
///
/// ```
/// use workloads::traffic::{FlowSpec, TrafficMatrix};
/// use simkernel::Tick;
///
/// let tm = TrafficMatrix::new(vec![FlowSpec::new(0, 5, 2.0)])
///     .with_surge(Tick(100), Tick(200), 3.0);
/// assert_eq!(tm.rate_at(0, Tick(50)), 2.0);
/// assert_eq!(tm.rate_at(0, Tick(150)), 6.0);
/// assert_eq!(tm.rate_at(0, Tick(250)), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    flows: Vec<FlowSpec>,
    surges: Vec<(Tick, Tick, f64)>,
}

impl TrafficMatrix {
    /// Creates a matrix from flows.
    #[must_use]
    pub fn new(flows: Vec<FlowSpec>) -> Self {
        Self {
            flows,
            surges: Vec::new(),
        }
    }

    /// Adds a global surge: all flow rates are multiplied by `factor`
    /// during `[from, to)` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `from >= to` or `factor < 0`.
    #[must_use]
    pub fn with_surge(mut self, from: Tick, to: Tick, factor: f64) -> Self {
        assert!(from < to, "surge interval must be non-empty");
        assert!(factor >= 0.0, "surge factor must be non-negative");
        self.surges.push((from, to, factor));
        self
    }

    /// The flows.
    #[must_use]
    pub fn flows(&self) -> &[FlowSpec] {
        &self.flows
    }

    /// Effective rate of flow `idx` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn rate_at(&self, idx: usize, t: Tick) -> f64 {
        let mut rate = self.flows[idx].rate;
        for &(from, to, factor) in &self.surges {
            if t >= from && t < to {
                rate *= factor;
            }
        }
        rate
    }

    /// Whether any surge is active at `t`.
    #[must_use]
    pub fn surge_active(&self, t: Tick) -> bool {
        self.surges.iter().any(|&(from, to, _)| t >= from && t < to)
    }

    /// Largest node id referenced by any flow (for sizing a network).
    #[must_use]
    pub fn max_node(&self) -> usize {
        self.flows
            .iter()
            .map(|f| f.src.max(f.dst))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_surges() {
        let tm = TrafficMatrix::new(vec![FlowSpec::new(0, 1, 1.0), FlowSpec::new(2, 3, 4.0)])
            .with_surge(Tick(10), Tick(20), 2.0);
        assert_eq!(tm.rate_at(0, Tick(5)), 1.0);
        assert_eq!(tm.rate_at(0, Tick(10)), 2.0);
        assert_eq!(tm.rate_at(1, Tick(15)), 8.0);
        assert_eq!(tm.rate_at(1, Tick(20)), 4.0);
        assert!(tm.surge_active(Tick(15)));
        assert!(!tm.surge_active(Tick(25)));
    }

    #[test]
    fn overlapping_surges_compose() {
        let tm = TrafficMatrix::new(vec![FlowSpec::new(0, 1, 1.0)])
            .with_surge(Tick(0), Tick(10), 2.0)
            .with_surge(Tick(5), Tick(10), 3.0);
        assert_eq!(tm.rate_at(0, Tick(7)), 6.0);
    }

    #[test]
    fn max_node_sizing() {
        let tm = TrafficMatrix::new(vec![FlowSpec::new(0, 9, 1.0), FlowSpec::new(4, 2, 1.0)]);
        assert_eq!(tm.max_node(), 9);
        assert_eq!(TrafficMatrix::new(vec![]).max_node(), 0);
        assert_eq!(tm.flows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "flow endpoints must differ")]
    fn self_flow_panics() {
        let _ = FlowSpec::new(3, 3, 1.0);
    }

    #[test]
    #[should_panic(expected = "surge interval must be non-empty")]
    fn empty_surge_panics() {
        let _ = TrafficMatrix::new(vec![]).with_surge(Tick(5), Tick(5), 2.0);
    }
}
