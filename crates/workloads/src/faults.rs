//! Scheduled component faults: cameras dying, links cut, cores
//! failing, correlated zone outages and sensor corruption.
//!
//! Where [`crate::disturbance`] perturbs *scalar signals* (demand,
//! load), a [`FaultPlan`] breaks *components*: the machinery a
//! self-aware system runs on. The plan is pure data — a sorted list of
//! `(tick, fault)` events each simulator applies at the top of its
//! tick loop — so the same plan replayed against the same
//! [`simkernel::SeedTree`] is bit-identical whether the replicate runs
//! sequentially or on a worker pool. Randomised plans are derived from
//! a seed subtree (never from wall-clock or execution order) for the
//! same reason.

use rand::Rng as _;
use serde::{Deserialize, Serialize};
use simkernel::rng::{Rng, SeedTree};
use simkernel::Tick;

/// How a faulty sensor corrupts its readings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorFaultKind {
    /// The sensor freezes: it keeps reporting the last value it held
    /// before the fault began.
    StuckAt,
    /// A constant additive offset on every reading.
    Bias {
        /// Offset added to the true value.
        offset: f64,
    },
    /// The sensor returns nothing at all.
    Dropout,
    /// Heavy uniform noise on every reading.
    Noise {
        /// Half-width of the uniform noise band.
        sigma: f64,
    },
}

impl SensorFaultKind {
    /// Applies the fault to one reading. `clean` is the true value the
    /// sensor would have reported, `held` the last pre-fault reading
    /// (what a stuck sensor repeats). Returns `None` for a dropout.
    pub fn corrupt(&self, clean: f64, held: f64, rng: &mut Rng) -> Option<f64> {
        match *self {
            SensorFaultKind::StuckAt => Some(held),
            SensorFaultKind::Bias { offset } => Some(clean + offset),
            SensorFaultKind::Dropout => None,
            SensorFaultKind::Noise { sigma } => {
                Some(clean + sigma * (rng.gen::<f64>() * 2.0 - 1.0))
            }
        }
    }
}

/// One scheduled component fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A camera goes dark: it drops every object it owns, stops
    /// bidding in auctions and cannot redetect.
    CameraFail {
        /// Camera index.
        camera: usize,
    },
    /// A failed camera reboots and rejoins the network.
    CameraRecover {
        /// Camera index.
        camera: usize,
    },
    /// A network link is severed; packets queued on it stall until
    /// restoration and routers must detour.
    LinkCut {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A previously cut link comes back.
    LinkRestore {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A core halts: its queue is orphaned and must be redistributed.
    CoreFail {
        /// Core index.
        core: usize,
    },
    /// A failed core is brought back online.
    CoreRecover {
        /// Core index.
        core: usize,
    },
    /// A correlated outage: a contiguous block of cloud nodes is
    /// forced offline for `duration` ticks (rack/zone failure), on top
    /// of whatever stochastic churn the nodes already exhibit.
    ZoneOutage {
        /// First node index in the zone.
        first: usize,
        /// Number of nodes in the zone.
        count: usize,
        /// Outage length in ticks.
        duration: u64,
    },
    /// A sensor starts misreporting for `duration` ticks.
    SensorFault {
        /// Sensor index (the consumer maps indices to sensor keys).
        sensor: usize,
        /// Corruption mode.
        kind: SensorFaultKind,
        /// Fault length in ticks.
        duration: u64,
    },
    /// A controller's *self-model* is corrupted in place — the fault
    /// class the supervision runtime (`selfaware::supervision`)
    /// exists to survive. Unlike the component faults above, nothing
    /// in the environment breaks: the awareness machinery itself does.
    ModelCorruption {
        /// Controller index (the consumer maps indices to whichever
        /// supervised model it runs; single-controller substrates use
        /// index 0).
        controller: usize,
        /// Corruption mode.
        kind: ModelCorruptionKind,
    },
}

/// How a controller self-model is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelCorruptionKind {
    /// Model state is overwritten with NaN — the classic silent
    /// poisoning of an EWMA/Holt pipeline, where one NaN propagates
    /// through every subsequent forecast.
    NanPoison,
    /// Model weights are multiplied by a large `gain` (sign-flipped by
    /// the consumer where that makes the corruption nastier), sending
    /// forecasts off the rails while keeping them finite.
    WeightScramble {
        /// Multiplicative blow-up factor.
        gain: f64,
    },
    /// The model stops updating for `duration` ticks: outputs freeze
    /// while the world moves on.
    StateFreeze {
        /// Freeze length in ticks.
        duration: u64,
    },
}

/// A fault bound to its onset time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Onset tick.
    pub at: Tick,
    /// What breaks.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Camera `camera` fails at `at`.
    #[must_use]
    pub fn camera_fail(at: Tick, camera: usize) -> Self {
        Self {
            at,
            kind: FaultKind::CameraFail { camera },
        }
    }

    /// Camera `camera` recovers at `at`.
    #[must_use]
    pub fn camera_recover(at: Tick, camera: usize) -> Self {
        Self {
            at,
            kind: FaultKind::CameraRecover { camera },
        }
    }

    /// Link `a — b` is cut at `at`.
    #[must_use]
    pub fn link_cut(at: Tick, a: usize, b: usize) -> Self {
        Self {
            at,
            kind: FaultKind::LinkCut { a, b },
        }
    }

    /// Link `a — b` is restored at `at`.
    #[must_use]
    pub fn link_restore(at: Tick, a: usize, b: usize) -> Self {
        Self {
            at,
            kind: FaultKind::LinkRestore { a, b },
        }
    }

    /// Core `core` fails at `at`.
    #[must_use]
    pub fn core_fail(at: Tick, core: usize) -> Self {
        Self {
            at,
            kind: FaultKind::CoreFail { core },
        }
    }

    /// Core `core` recovers at `at`.
    #[must_use]
    pub fn core_recover(at: Tick, core: usize) -> Self {
        Self {
            at,
            kind: FaultKind::CoreRecover { core },
        }
    }

    /// Nodes `first .. first + count` go dark for `duration` ticks.
    #[must_use]
    pub fn zone_outage(at: Tick, first: usize, count: usize, duration: u64) -> Self {
        Self {
            at,
            kind: FaultKind::ZoneOutage {
                first,
                count,
                duration,
            },
        }
    }

    /// Sensor `sensor` misreports per `kind` for `duration` ticks.
    #[must_use]
    pub fn sensor_fault(at: Tick, sensor: usize, kind: SensorFaultKind, duration: u64) -> Self {
        Self {
            at,
            kind: FaultKind::SensorFault {
                sensor,
                kind,
                duration,
            },
        }
    }

    /// Controller `controller`'s self-model is corrupted per `kind` at
    /// `at`.
    #[must_use]
    pub fn model_corruption(at: Tick, controller: usize, kind: ModelCorruptionKind) -> Self {
        Self {
            at,
            kind: FaultKind::ModelCorruption { controller, kind },
        }
    }
}

/// An ordered set of scheduled faults.
///
/// # Example
///
/// ```
/// use workloads::faults::{FaultEvent, FaultPlan};
/// use simkernel::Tick;
///
/// let plan = FaultPlan::none()
///     .and(FaultEvent::camera_fail(Tick(100), 3))
///     .and(FaultEvent::camera_recover(Tick(200), 3));
/// assert_eq!(plan.events_at(Tick(100)).count(), 1);
/// assert_eq!(plan.events_at(Tick(150)).count(), 0);
/// assert!(plan.changes_in(Tick(0), Tick(101)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates a plan from events (any order; sorted by onset, ties
    /// keeping insertion order).
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at.value());
        Self { events }
    }

    /// The empty plan (unbreakable-hardware control).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an event (builder style), keeping the plan sorted.
    #[must_use]
    pub fn and(mut self, e: FaultEvent) -> Self {
        self.events.push(e);
        self.events.sort_by_key(|e| e.at.value());
        self
    }

    /// The scheduled events, in onset order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events whose onset is exactly `t` — simulators call this at the
    /// top of every tick and apply what comes back, in order.
    pub fn events_at(&self, t: Tick) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.at == t)
    }

    /// Whether any fault begins in `[from, to)`.
    #[must_use]
    pub fn changes_in(&self, from: Tick, to: Tick) -> bool {
        self.events.iter().any(|e| e.at >= from && e.at < to)
    }

    /// The sensor fault governing `sensor` at time `t`, if any (the
    /// latest-onset active fault wins when windows overlap).
    #[must_use]
    pub fn sensor_fault_at(&self, sensor: usize, t: Tick) -> Option<SensorFaultKind> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::SensorFault {
                    sensor: s,
                    kind,
                    duration,
                } if s == sensor && e.at <= t && t.value() < e.at.value() + duration => Some(kind),
                _ => None,
            })
            .next_back()
    }

    /// Whether controller `controller`'s model is inside an active
    /// [`ModelCorruptionKind::StateFreeze`] window at `t`. Simulators
    /// consult this to suppress model updates while frozen (the freeze
    /// is a property of the fault plan, not of checkpointable model
    /// state — a rollback must not thaw it).
    #[must_use]
    pub fn model_frozen_at(&self, controller: usize, t: Tick) -> bool {
        self.events.iter().any(|e| match e.kind {
            FaultKind::ModelCorruption {
                controller: c,
                kind: ModelCorruptionKind::StateFreeze { duration },
            } => c == controller && e.at <= t && t.value() < e.at.value() + duration,
            _ => false,
        })
    }

    /// A seed-derived plan of `outages` random camera fail/recover
    /// pairs: each picks a camera in `0..cameras` and an onset in
    /// `[window.0, window.1)`, recovering `downtime` ticks later.
    ///
    /// Deterministic per seed subtree — the basis of the fault-plan
    /// parity guarantee (see DESIGN.md, "Fault model").
    ///
    /// # Panics
    ///
    /// Panics if `cameras == 0` or the window is empty.
    #[must_use]
    pub fn random_camera_outages(
        seeds: &SeedTree,
        cameras: usize,
        outages: usize,
        window: (u64, u64),
        downtime: u64,
    ) -> Self {
        assert!(cameras > 0, "need at least one camera");
        assert!(window.0 < window.1, "fault window must be non-empty");
        let mut rng = seeds.rng("fault-plan");
        let mut events = Vec::with_capacity(outages * 2);
        for _ in 0..outages {
            let cam = rng.gen_range(0..cameras);
            let at = rng.gen_range(window.0..window.1);
            events.push(FaultEvent::camera_fail(Tick(at), cam));
            events.push(FaultEvent::camera_recover(Tick(at + downtime), cam));
        }
        Self::new(events)
    }

    /// A seed-derived plan of `count` random model corruptions: each
    /// picks a controller in `0..controllers`, an onset in
    /// `[window.0, window.1)` and one of the three
    /// [`ModelCorruptionKind`]s (scramble gains in `[5, 50)`, freeze
    /// durations in `[20, 80)`). Deterministic per seed subtree, like
    /// every other randomised plan.
    ///
    /// # Panics
    ///
    /// Panics if `controllers == 0` or the window is empty.
    #[must_use]
    pub fn random_model_corruptions(
        seeds: &SeedTree,
        controllers: usize,
        count: usize,
        window: (u64, u64),
    ) -> Self {
        assert!(controllers > 0, "need at least one controller");
        assert!(window.0 < window.1, "fault window must be non-empty");
        let mut rng = seeds.rng("model-corruption-plan");
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let controller = rng.gen_range(0..controllers);
            let at = rng.gen_range(window.0..window.1);
            let kind = match rng.gen_range(0..3u8) {
                0 => ModelCorruptionKind::NanPoison,
                1 => ModelCorruptionKind::WeightScramble {
                    gain: rng.gen_range(5.0..50.0),
                },
                _ => ModelCorruptionKind::StateFreeze {
                    duration: rng.gen_range(20..80),
                },
            };
            events.push(FaultEvent::model_corruption(Tick(at), controller, kind));
        }
        Self::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_onset() {
        let plan = FaultPlan::new(vec![
            FaultEvent::core_fail(Tick(50), 1),
            FaultEvent::camera_fail(Tick(10), 0),
        ]);
        assert_eq!(plan.events()[0].at, Tick(10));
        assert_eq!(plan.events()[1].at, Tick(50));
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn events_at_filters_by_tick() {
        let plan = FaultPlan::none()
            .and(FaultEvent::link_cut(Tick(5), 0, 1))
            .and(FaultEvent::link_restore(Tick(9), 0, 1))
            .and(FaultEvent::core_fail(Tick(5), 2));
        assert_eq!(plan.events_at(Tick(5)).count(), 2);
        assert_eq!(plan.events_at(Tick(9)).count(), 1);
        assert_eq!(plan.events_at(Tick(6)).count(), 0);
    }

    #[test]
    fn changes_in_window() {
        let plan = FaultPlan::none().and(FaultEvent::zone_outage(Tick(100), 0, 4, 50));
        assert!(plan.changes_in(Tick(0), Tick(101)));
        assert!(!plan.changes_in(Tick(101), Tick(500)));
    }

    #[test]
    fn sensor_fault_window_and_precedence() {
        let plan = FaultPlan::none()
            .and(FaultEvent::sensor_fault(
                Tick(10),
                0,
                SensorFaultKind::StuckAt,
                20,
            ))
            .and(FaultEvent::sensor_fault(
                Tick(15),
                0,
                SensorFaultKind::Dropout,
                5,
            ));
        assert_eq!(plan.sensor_fault_at(0, Tick(9)), None);
        assert_eq!(
            plan.sensor_fault_at(0, Tick(10)),
            Some(SensorFaultKind::StuckAt)
        );
        // Overlap: the later onset wins.
        assert_eq!(
            plan.sensor_fault_at(0, Tick(16)),
            Some(SensorFaultKind::Dropout)
        );
        // Inner window over, outer fault still active.
        assert_eq!(
            plan.sensor_fault_at(0, Tick(25)),
            Some(SensorFaultKind::StuckAt)
        );
        assert_eq!(plan.sensor_fault_at(0, Tick(30)), None);
        assert_eq!(plan.sensor_fault_at(1, Tick(12)), None, "other sensor");
    }

    #[test]
    fn corrupt_modes() {
        let mut rng = SeedTree::new(3).rng("t");
        assert_eq!(
            SensorFaultKind::StuckAt.corrupt(5.0, 2.0, &mut rng),
            Some(2.0)
        );
        assert_eq!(
            SensorFaultKind::Bias { offset: 1.5 }.corrupt(5.0, 2.0, &mut rng),
            Some(6.5)
        );
        assert_eq!(SensorFaultKind::Dropout.corrupt(5.0, 2.0, &mut rng), None);
        let noisy = SensorFaultKind::Noise { sigma: 3.0 }
            .corrupt(5.0, 2.0, &mut rng)
            .expect("noise keeps reporting");
        assert!((noisy - 5.0).abs() <= 3.0);
    }

    #[test]
    fn random_outages_are_seed_deterministic() {
        let seeds = SeedTree::new(77);
        let a = FaultPlan::random_camera_outages(&seeds, 16, 4, (100, 500), 80);
        let b = FaultPlan::random_camera_outages(&seeds, 16, 4, (100, 500), 80);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 8);
        let other = FaultPlan::random_camera_outages(&SeedTree::new(78), 16, 4, (100, 500), 80);
        assert_ne!(a, other, "different seed, different plan");
        for e in a.events() {
            match e.kind {
                FaultKind::CameraFail { camera } | FaultKind::CameraRecover { camera } => {
                    assert!(camera < 16);
                }
                _ => panic!("unexpected kind"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "fault window must be non-empty")]
    fn empty_window_panics() {
        let _ = FaultPlan::random_camera_outages(&SeedTree::new(1), 4, 1, (5, 5), 10);
    }

    #[test]
    fn model_frozen_at_windows() {
        let plan = FaultPlan::none()
            .and(FaultEvent::model_corruption(
                Tick(50),
                0,
                ModelCorruptionKind::StateFreeze { duration: 10 },
            ))
            .and(FaultEvent::model_corruption(
                Tick(60),
                1,
                ModelCorruptionKind::NanPoison,
            ));
        assert!(!plan.model_frozen_at(0, Tick(49)));
        assert!(plan.model_frozen_at(0, Tick(50)));
        assert!(plan.model_frozen_at(0, Tick(59)));
        assert!(!plan.model_frozen_at(0, Tick(60)));
        assert!(!plan.model_frozen_at(1, Tick(55)), "other controller");
        assert!(
            !plan.model_frozen_at(1, Tick(60)),
            "non-freeze corruption never freezes"
        );
    }

    #[test]
    fn random_model_corruptions_are_seed_deterministic() {
        let seeds = SeedTree::new(21);
        let a = FaultPlan::random_model_corruptions(&seeds, 3, 12, (100, 900));
        let b = FaultPlan::random_model_corruptions(&seeds, 3, 12, (100, 900));
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 12);
        let other = FaultPlan::random_model_corruptions(&SeedTree::new(22), 3, 12, (100, 900));
        assert_ne!(a, other, "different seed, different plan");
        for e in a.events() {
            let FaultKind::ModelCorruption { controller, kind } = e.kind else {
                panic!("unexpected kind");
            };
            assert!(controller < 3);
            assert!(e.at.value() >= 100 && e.at.value() < 900);
            match kind {
                ModelCorruptionKind::NanPoison => {}
                ModelCorruptionKind::WeightScramble { gain } => {
                    assert!((5.0..50.0).contains(&gain));
                }
                ModelCorruptionKind::StateFreeze { duration } => {
                    assert!((20..80).contains(&duration));
                }
            }
        }
    }
}
