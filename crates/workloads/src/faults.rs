//! Scheduled component faults: cameras dying, links cut, cores
//! failing, correlated zone outages and sensor corruption.
//!
//! Where [`crate::disturbance`] perturbs *scalar signals* (demand,
//! load), a [`FaultPlan`] breaks *components*: the machinery a
//! self-aware system runs on. The plan is pure data — a sorted list of
//! `(tick, fault)` events each simulator applies at the top of its
//! tick loop — so the same plan replayed against the same
//! [`simkernel::SeedTree`] is bit-identical whether the replicate runs
//! sequentially or on a worker pool. Randomised plans are derived from
//! a seed subtree (never from wall-clock or execution order) for the
//! same reason.

use rand::Rng as _;
use selfaware::comms::{Arrivals, Channel, ChannelOutcome};
use selfaware::replay::InterventionMask;
use serde::{Deserialize, Serialize};
use simkernel::rng::{Rng, SeedTree};
use simkernel::Tick;

/// How a faulty sensor corrupts its readings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorFaultKind {
    /// The sensor freezes: it keeps reporting the last value it held
    /// before the fault began.
    StuckAt,
    /// A constant additive offset on every reading.
    Bias {
        /// Offset added to the true value.
        offset: f64,
    },
    /// The sensor returns nothing at all.
    Dropout,
    /// Heavy uniform noise on every reading.
    Noise {
        /// Half-width of the uniform noise band.
        sigma: f64,
    },
}

impl SensorFaultKind {
    /// Applies the fault to one reading. `clean` is the true value the
    /// sensor would have reported, `held` the last pre-fault reading
    /// (what a stuck sensor repeats). Returns `None` for a dropout.
    pub fn corrupt(&self, clean: f64, held: f64, rng: &mut Rng) -> Option<f64> {
        match *self {
            SensorFaultKind::StuckAt => Some(held),
            SensorFaultKind::Bias { offset } => Some(clean + offset),
            SensorFaultKind::Dropout => None,
            SensorFaultKind::Noise { sigma } => {
                Some(clean + sigma * (rng.gen::<f64>() * 2.0 - 1.0))
            }
        }
    }
}

/// One scheduled component fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A camera goes dark: it drops every object it owns, stops
    /// bidding in auctions and cannot redetect.
    CameraFail {
        /// Camera index.
        camera: usize,
    },
    /// A failed camera reboots and rejoins the network.
    CameraRecover {
        /// Camera index.
        camera: usize,
    },
    /// A network link is severed; packets queued on it stall until
    /// restoration and routers must detour.
    LinkCut {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A previously cut link comes back.
    LinkRestore {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// A core halts: its queue is orphaned and must be redistributed.
    CoreFail {
        /// Core index.
        core: usize,
    },
    /// A failed core is brought back online.
    CoreRecover {
        /// Core index.
        core: usize,
    },
    /// A correlated outage: a contiguous block of cloud nodes is
    /// forced offline for `duration` ticks (rack/zone failure), on top
    /// of whatever stochastic churn the nodes already exhibit.
    ZoneOutage {
        /// First node index in the zone.
        first: usize,
        /// Number of nodes in the zone.
        count: usize,
        /// Outage length in ticks.
        duration: u64,
    },
    /// A sensor starts misreporting for `duration` ticks.
    SensorFault {
        /// Sensor index (the consumer maps indices to sensor keys).
        sensor: usize,
        /// Corruption mode.
        kind: SensorFaultKind,
        /// Fault length in ticks.
        duration: u64,
    },
    /// A controller's *self-model* is corrupted in place — the fault
    /// class the supervision runtime (`selfaware::supervision`)
    /// exists to survive. Unlike the component faults above, nothing
    /// in the environment breaks: the awareness machinery itself does.
    ModelCorruption {
        /// Controller index (the consumer maps indices to whichever
        /// supervised model it runs; single-controller substrates use
        /// index 0).
        controller: usize,
        /// Corruption mode.
        kind: ModelCorruptionKind,
    },
}

/// How a controller self-model is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelCorruptionKind {
    /// Model state is overwritten with NaN — the classic silent
    /// poisoning of an EWMA/Holt pipeline, where one NaN propagates
    /// through every subsequent forecast.
    NanPoison,
    /// Model weights are multiplied by a large `gain` (sign-flipped by
    /// the consumer where that makes the corruption nastier), sending
    /// forecasts off the rails while keeping them finite.
    WeightScramble {
        /// Multiplicative blow-up factor.
        gain: f64,
    },
    /// The model stops updating for `duration` ticks: outputs freeze
    /// while the world moves on.
    StateFreeze {
        /// Freeze length in ticks.
        duration: u64,
    },
}

/// A fault bound to its onset time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Onset tick.
    pub at: Tick,
    /// What breaks.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Camera `camera` fails at `at`.
    #[must_use]
    pub fn camera_fail(at: Tick, camera: usize) -> Self {
        Self {
            at,
            kind: FaultKind::CameraFail { camera },
        }
    }

    /// Camera `camera` recovers at `at`.
    #[must_use]
    pub fn camera_recover(at: Tick, camera: usize) -> Self {
        Self {
            at,
            kind: FaultKind::CameraRecover { camera },
        }
    }

    /// Link `a — b` is cut at `at`.
    #[must_use]
    pub fn link_cut(at: Tick, a: usize, b: usize) -> Self {
        Self {
            at,
            kind: FaultKind::LinkCut { a, b },
        }
    }

    /// Link `a — b` is restored at `at`.
    #[must_use]
    pub fn link_restore(at: Tick, a: usize, b: usize) -> Self {
        Self {
            at,
            kind: FaultKind::LinkRestore { a, b },
        }
    }

    /// Core `core` fails at `at`.
    #[must_use]
    pub fn core_fail(at: Tick, core: usize) -> Self {
        Self {
            at,
            kind: FaultKind::CoreFail { core },
        }
    }

    /// Core `core` recovers at `at`.
    #[must_use]
    pub fn core_recover(at: Tick, core: usize) -> Self {
        Self {
            at,
            kind: FaultKind::CoreRecover { core },
        }
    }

    /// Nodes `first .. first + count` go dark for `duration` ticks.
    #[must_use]
    pub fn zone_outage(at: Tick, first: usize, count: usize, duration: u64) -> Self {
        Self {
            at,
            kind: FaultKind::ZoneOutage {
                first,
                count,
                duration,
            },
        }
    }

    /// Sensor `sensor` misreports per `kind` for `duration` ticks.
    #[must_use]
    pub fn sensor_fault(at: Tick, sensor: usize, kind: SensorFaultKind, duration: u64) -> Self {
        Self {
            at,
            kind: FaultKind::SensorFault {
                sensor,
                kind,
                duration,
            },
        }
    }

    /// Controller `controller`'s self-model is corrupted per `kind` at
    /// `at`.
    #[must_use]
    pub fn model_corruption(at: Tick, controller: usize, kind: ModelCorruptionKind) -> Self {
        Self {
            at,
            kind: FaultKind::ModelCorruption { controller, kind },
        }
    }

    /// For duration-carrying faults (zone outages, sensor faults,
    /// state freezes), the first tick *after* the fault window — the
    /// restore edge an event-driven simulator must also be woken at.
    /// `None` for instantaneous events (their recovery, if any, is its
    /// own event).
    #[must_use]
    pub fn end_tick(&self) -> Option<Tick> {
        let duration = match self.kind {
            FaultKind::ZoneOutage { duration, .. } | FaultKind::SensorFault { duration, .. } => {
                duration
            }
            FaultKind::ModelCorruption {
                kind: ModelCorruptionKind::StateFreeze { duration },
                ..
            } => duration,
            _ => return None,
        };
        Some(Tick(self.at.value().saturating_add(duration)))
    }
}

/// An ordered set of scheduled faults.
///
/// # Example
///
/// ```
/// use workloads::faults::{FaultEvent, FaultPlan};
/// use simkernel::Tick;
///
/// let plan = FaultPlan::none()
///     .and(FaultEvent::camera_fail(Tick(100), 3))
///     .and(FaultEvent::camera_recover(Tick(200), 3));
/// assert_eq!(plan.events_at(Tick(100)).count(), 1);
/// assert_eq!(plan.events_at(Tick(150)).count(), 0);
/// assert!(plan.changes_in(Tick(0), Tick(101)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates a plan from events (any order; sorted by onset, ties
    /// keeping insertion order).
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at.value());
        Self { events }
    }

    /// The empty plan (unbreakable-hardware control).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an event (builder style), keeping the plan sorted.
    #[must_use]
    pub fn and(mut self, e: FaultEvent) -> Self {
        self.events.push(e);
        self.events.sort_by_key(|e| e.at.value());
        self
    }

    /// The scheduled events, in onset order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events whose onset is exactly `t` — simulators call this at the
    /// top of every tick and apply what comes back, in order.
    pub fn events_at(&self, t: Tick) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.at == t)
    }

    /// Whether any fault begins in `[from, to)`.
    #[must_use]
    pub fn changes_in(&self, from: Tick, to: Tick) -> bool {
        self.events.iter().any(|e| e.at >= from && e.at < to)
    }

    /// Registers this plan's events as wakes on a sparse-activation
    /// scheduler, so event-driven simulators are *woken* by their
    /// fault plan instead of polling [`FaultPlan::events_at`] every
    /// tick. For each event, `keys_of` pushes the entity keys the
    /// event touches (a zone outage expands to every node in the
    /// block; events the simulator does not model push nothing); one
    /// wake is scheduled per key at the event's onset and — for
    /// duration-carrying faults — another at the window's end
    /// ([`FaultEvent::end_tick`]) so the *restore* edge can never be
    /// skipped by sparse activation either. Returns the number of
    /// wakes scheduled.
    pub fn schedule_wakes<K>(
        &self,
        sched: &mut simkernel::SimScheduler<K>,
        class: u8,
        mut keys_of: impl FnMut(&FaultEvent, &mut Vec<K>),
    ) -> usize {
        let mut keys = Vec::new();
        let mut scheduled = 0;
        for e in &self.events {
            keys.clear();
            keys_of(e, &mut keys);
            for key in keys.drain(..) {
                sched.wake_at(e.at, class, key);
                scheduled += 1;
            }
            if let Some(end) = e.end_tick() {
                keys_of(e, &mut keys);
                for key in keys.drain(..) {
                    sched.wake_at(end, class, key);
                    scheduled += 1;
                }
            }
        }
        scheduled
    }

    /// The sensor fault governing `sensor` at time `t`, if any (the
    /// latest-onset active fault wins when windows overlap).
    #[must_use]
    pub fn sensor_fault_at(&self, sensor: usize, t: Tick) -> Option<SensorFaultKind> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::SensorFault {
                    sensor: s,
                    kind,
                    duration,
                } if s == sensor && e.at <= t && t.value() < e.at.value() + duration => Some(kind),
                _ => None,
            })
            .next_back()
    }

    /// Whether controller `controller`'s model is inside an active
    /// [`ModelCorruptionKind::StateFreeze`] window at `t`. Simulators
    /// consult this to suppress model updates while frozen (the freeze
    /// is a property of the fault plan, not of checkpointable model
    /// state — a rollback must not thaw it).
    #[must_use]
    pub fn model_frozen_at(&self, controller: usize, t: Tick) -> bool {
        self.events.iter().any(|e| match e.kind {
            FaultKind::ModelCorruption {
                controller: c,
                kind: ModelCorruptionKind::StateFreeze { duration },
            } => c == controller && e.at <= t && t.value() < e.at.value() + duration,
            _ => false,
        })
    }

    /// Whether node `node` is inside an active
    /// [`FaultKind::ZoneOutage`] window at `t`. This is the plan-side
    /// truth a zoned command plane consults so that *communication*
    /// recovery (a [`NetPartition`] healing) cannot be mistaken for
    /// *zone* recovery: delivery to a zone must stay suppressed while
    /// the zone's nodes are still scheduled dead, whatever the channel
    /// is doing (see the overlap-matrix tests in `cloudsim::sim`).
    #[must_use]
    pub fn zone_down_at(&self, node: usize, t: Tick) -> bool {
        self.events.iter().any(|e| match e.kind {
            FaultKind::ZoneOutage {
                first,
                count,
                duration,
            } => {
                node >= first
                    && node < first.saturating_add(count)
                    && e.at <= t
                    && t.value() < e.at.value().saturating_add(duration)
            }
            _ => false,
        })
    }

    /// Merges another plan's events into this one (builder style).
    #[must_use]
    pub fn merged(mut self, other: &Self) -> Self {
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| e.at.value());
        self
    }

    /// A seed-derived plan of `outages` random camera fail/recover
    /// pairs: each picks a camera in `0..cameras` and an onset in
    /// `[window.0, window.1)`, recovering `downtime` ticks later.
    ///
    /// Deterministic per seed subtree — the basis of the fault-plan
    /// parity guarantee (see DESIGN.md, "Fault model").
    ///
    /// # Panics
    ///
    /// Panics if `cameras == 0` or the window is empty.
    #[must_use]
    pub fn random_camera_outages(
        seeds: &SeedTree,
        cameras: usize,
        outages: usize,
        window: (u64, u64),
        downtime: u64,
    ) -> Self {
        assert!(cameras > 0, "need at least one camera");
        assert!(window.0 < window.1, "fault window must be non-empty");
        let mut rng = seeds.rng("fault-plan");
        let mut events = Vec::with_capacity(outages * 2);
        for _ in 0..outages {
            let cam = rng.gen_range(0..cameras);
            let at = rng.gen_range(window.0..window.1);
            events.push(FaultEvent::camera_fail(Tick(at), cam));
            events.push(FaultEvent::camera_recover(Tick(at + downtime), cam));
        }
        Self::new(events)
    }

    /// A seed-derived plan of `count` random model corruptions: each
    /// picks a controller in `0..controllers`, an onset in
    /// `[window.0, window.1)` and one of the three
    /// [`ModelCorruptionKind`]s (scramble gains in `[5, 50)`, freeze
    /// durations in `[20, 80)`). Deterministic per seed subtree, like
    /// every other randomised plan.
    ///
    /// # Panics
    ///
    /// Panics if `controllers == 0` or the window is empty.
    #[must_use]
    pub fn random_model_corruptions(
        seeds: &SeedTree,
        controllers: usize,
        count: usize,
        window: (u64, u64),
    ) -> Self {
        assert!(controllers > 0, "need at least one controller");
        assert!(window.0 < window.1, "fault window must be non-empty");
        let mut rng = seeds.rng("model-corruption-plan");
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let controller = rng.gen_range(0..controllers);
            let at = rng.gen_range(window.0..window.1);
            let kind = match rng.gen_range(0..3u8) {
                0 => ModelCorruptionKind::NanPoison,
                1 => ModelCorruptionKind::WeightScramble {
                    gain: rng.gen_range(5.0..50.0),
                },
                _ => ModelCorruptionKind::StateFreeze {
                    duration: rng.gen_range(20..80),
                },
            };
            events.push(FaultEvent::model_corruption(Tick(at), controller, kind));
        }
        Self::new(events)
    }
}

/// Per-link unreliability parameters.
///
/// All probabilities are per-frame; `max_delay` bounds the extra
/// latency (in ticks) a delayed frame suffers. Delay is the source of
/// *reordering*: an undelayed later frame overtakes a delayed earlier
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Probability a frame is silently dropped.
    pub loss: f64,
    /// Probability a delivered frame arrives twice.
    pub dup: f64,
    /// Probability a delivered frame is delayed.
    pub delay_prob: f64,
    /// Maximum extra latency in ticks for a delayed frame (the actual
    /// delay is drawn uniformly from `1..=max_delay`).
    pub max_delay: u64,
}

impl LinkModel {
    /// The perfect link: no loss, no duplication, no delay.
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            loss: 0.0,
            dup: 0.0,
            delay_prob: 0.0,
            max_delay: 0,
        }
    }

    /// A link that only loses frames, with probability `loss`.
    #[must_use]
    pub fn lossy(loss: f64) -> Self {
        Self {
            loss,
            ..Self::ideal()
        }
    }

    /// Whether the link never misbehaves.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.loss == 0.0 && self.dup == 0.0 && (self.delay_prob == 0.0 || self.max_delay == 0)
    }

    fn validate(&self) {
        for (name, p) in [
            ("loss", self.loss),
            ("dup", self.dup),
            ("delay_prob", self.delay_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be a probability in [0, 1]"
            );
        }
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::ideal()
    }
}

/// A scheduled network partition: for `duration` ticks starting at
/// `start`, every link with *exactly one* endpoint in `nodes` is cut
/// (nodes inside the partition still talk to each other, as do nodes
/// outside it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetPartition {
    /// First tick of the partition window.
    pub start: u64,
    /// Window length in ticks.
    pub duration: u64,
    /// The isolated node group.
    pub nodes: Vec<usize>,
}

impl NetPartition {
    /// Whether the `src → dst` link is cut at `t`.
    #[must_use]
    pub fn cuts(&self, src: usize, dst: usize, t: Tick) -> bool {
        if t.value() < self.start || t.value() >= self.start + self.duration {
            return false;
        }
        self.nodes.contains(&src) != self.nodes.contains(&dst)
    }
}

/// `splitmix64` finalizer — the stateless hash behind every channel
/// decision.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A deterministic lossy-channel plan: per-link drop, duplication and
/// delay probabilities plus scheduled partitions, derived purely from
/// a [`SeedTree`].
///
/// Unlike the RNG-stream disturbances elsewhere in this crate, the
/// channel consumes **no** stream state: every decision is a stateless
/// hash of `(salt, src, dst, wire sequence number)`. That makes the
/// fate of a frame independent of *when* or *in what order* the
/// simulator asks — the property that keeps lossy runs bit-identical
/// between sequential and parallel replication (see DESIGN.md,
/// "Communication fault model").
///
/// # Example
///
/// ```
/// use workloads::faults::{ChannelPlan, LinkModel};
/// use selfaware::comms::Channel as _;
/// use simkernel::{SeedTree, Tick};
///
/// let seeds = SeedTree::new(7);
/// let plan = ChannelPlan::uniform(&seeds, LinkModel::lossy(0.3))
///     .with_partition(100, 50, vec![2, 3]);
/// assert!(!plan.is_ideal());
/// // Partition windows cut links that cross the boundary...
/// assert!(plan.transmit(0, 2, 9, Tick(120)).partitioned);
/// // ...but not links wholly inside or outside the group.
/// assert!(!plan.transmit(2, 3, 9, Tick(120)).partitioned);
/// // The ideal plan is exactly the historical perfect network.
/// assert!(ChannelPlan::ideal().transmit(0, 1, 0, Tick(5)).arrives_at(Tick(5)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelPlan {
    salt: u64,
    default: LinkModel,
    overrides: Vec<(usize, usize, LinkModel)>,
    partitions: Vec<NetPartition>,
}

impl Default for ChannelPlan {
    fn default() -> Self {
        Self::ideal()
    }
}

impl ChannelPlan {
    /// The perfect network (every substrate's default — existing runs
    /// are bit-for-bit unchanged).
    #[must_use]
    pub fn ideal() -> Self {
        Self {
            salt: 0,
            default: LinkModel::ideal(),
            overrides: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// A plan applying `model` to every link, salted from the
    /// `"channel-plan"` seed subtree (same seed ⇒ same per-frame
    /// fates).
    ///
    /// # Panics
    ///
    /// Panics if a probability in `model` is outside `[0, 1]`.
    #[must_use]
    pub fn uniform(seeds: &SeedTree, model: LinkModel) -> Self {
        model.validate();
        Self {
            salt: seeds.rng("channel-plan").gen::<u64>(),
            default: model,
            overrides: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Replaces the default (all-links) model, keeping the salt, link
    /// overrides and scheduled partitions (builder style).
    ///
    /// # Panics
    ///
    /// Panics if a probability in `model` is outside `[0, 1]`.
    #[must_use]
    pub fn with_default(mut self, model: LinkModel) -> Self {
        model.validate();
        self.default = model;
        self
    }

    /// Overrides the model for the directed link `src → dst` (builder
    /// style; the last override for a link wins).
    ///
    /// # Panics
    ///
    /// Panics if a probability in `model` is outside `[0, 1]`.
    #[must_use]
    pub fn with_link(mut self, src: usize, dst: usize, model: LinkModel) -> Self {
        model.validate();
        self.overrides.push((src, dst, model));
        self
    }

    /// Schedules a partition isolating `nodes` for `duration` ticks
    /// from `start` (builder style).
    #[must_use]
    pub fn with_partition(mut self, start: u64, duration: u64, nodes: Vec<usize>) -> Self {
        self.partitions.push(NetPartition {
            start,
            duration,
            nodes,
        });
        self
    }

    /// The scheduled partitions.
    #[must_use]
    pub fn partitions(&self) -> &[NetPartition] {
        &self.partitions
    }

    /// Whether the `src → dst` link is inside any partition window at
    /// `t`.
    #[must_use]
    pub fn partitioned_at(&self, src: usize, dst: usize, t: Tick) -> bool {
        self.partitions.iter().any(|p| p.cuts(src, dst, t))
    }

    fn model_for(&self, src: usize, dst: usize) -> &LinkModel {
        self.overrides
            .iter()
            .rev()
            .find(|(s, d, _)| *s == src && *d == dst)
            .map_or(&self.default, |(_, _, m)| m)
    }

    /// A uniform hash in `[0, 1)` for one named decision about one
    /// frame. Pure in `(salt, src, dst, seq, label)`.
    fn unit(&self, src: usize, dst: usize, seq: u64, label: u64) -> f64 {
        let mut h = self.salt;
        for v in [src as u64, dst as u64, seq, label] {
            h = splitmix64(h ^ v);
        }
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether the plan never loses, delays, duplicates, or
    /// partitions.
    #[must_use]
    pub fn is_ideal(&self) -> bool {
        self.default.is_ideal()
            && self.overrides.iter().all(|(_, _, m)| m.is_ideal())
            && self.partitions.is_empty()
    }
}

// Decision labels: one per independent draw about a frame.
const DRAW_LOSS: u64 = 1;
const DRAW_DELAY: u64 = 2;
const DRAW_DELAY_TICKS: u64 = 3;
const DRAW_DUP: u64 = 4;
const DRAW_DUP_DELAY: u64 = 5;
const DRAW_DUP_TICKS: u64 = 6;

impl Channel for ChannelPlan {
    fn transmit(&self, src: usize, dst: usize, seq: u64, now: Tick) -> ChannelOutcome {
        if self.partitioned_at(src, dst, now) {
            return ChannelOutcome {
                arrivals: Arrivals::new(),
                partitioned: true,
            };
        }
        let m = self.model_for(src, dst);
        if m.is_ideal() {
            return ChannelOutcome::delivered(now);
        }
        if self.unit(src, dst, seq, DRAW_LOSS) < m.loss {
            return ChannelOutcome::lost();
        }
        let delay_of = |prob_label: u64, ticks_label: u64| -> u64 {
            if m.max_delay > 0 && self.unit(src, dst, seq, prob_label) < m.delay_prob {
                1 + (self.unit(src, dst, seq, ticks_label) * m.max_delay as f64) as u64
            } else {
                0
            }
        };
        let mut arrivals = Arrivals::once(Tick(now.0 + delay_of(DRAW_DELAY, DRAW_DELAY_TICKS)));
        if self.unit(src, dst, seq, DRAW_DUP) < m.dup {
            arrivals.push(Tick(now.0 + delay_of(DRAW_DUP_DELAY, DRAW_DUP_TICKS)));
        }
        ChannelOutcome {
            arrivals,
            partitioned: false,
        }
    }

    fn is_ideal(&self) -> bool {
        ChannelPlan::is_ideal(self)
    }
}

/// A named, composed fault scenario: scheduled hardware/model faults
/// ([`FaultPlan`] — zone outages, camera and core failures, model
/// corruption) riding on an unreliable medium ([`ChannelPlan`] — loss,
/// duplication, delay, partitions). One campaign describes everything
/// that goes wrong in one run of a composed world, so cascading
/// scenarios ("the zone dies, the network jams, the cameras starve")
/// are built once and handed to the simulator whole.
///
/// Both halves keep their independent determinism contracts: fault
/// events are an explicit schedule, channel draws are stateless hashes
/// of the plan salt — so any campaign preserves seq-vs-parallel
/// bit-identity.
///
/// ```
/// use simkernel::{SeedTree, Tick};
/// use workloads::faults::{FaultCampaign, FaultEvent, LinkModel};
///
/// let seeds = SeedTree::new(7);
/// let campaign = FaultCampaign::new("demo", &seeds)
///     .with_loss(LinkModel::lossy(0.2))
///     .zone_outage(Tick(100), 0, 4, 50)
///     .net_partition(120, 60, vec![2])
///     .fault(FaultEvent::camera_fail(Tick(130), 1));
/// assert!(campaign.faults().zone_down_at(2, Tick(120)));
/// assert!(campaign.channel().partitioned_at(2, 9, Tick(130)));
/// ```
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    name: String,
    faults: FaultPlan,
    channel: ChannelPlan,
    mask: InterventionMask,
}

impl FaultCampaign {
    /// An empty campaign: no faults, a channel that is ideal but
    /// already salted from `seeds` so later [`FaultCampaign::with_loss`]
    /// calls stay deterministic per seed subtree, and the factual
    /// (allow-everything) intervention mask.
    #[must_use]
    pub fn new(name: impl Into<String>, seeds: &SeedTree) -> Self {
        Self {
            name: name.into(),
            faults: FaultPlan::none(),
            channel: ChannelPlan::uniform(seeds, LinkModel::ideal()),
            mask: InterventionMask::allow_all(),
        }
    }

    /// The campaign's display name (table rows, trace records).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The counterfactual-replay intervention mask substrates run
    /// this campaign under (see [`selfaware::replay`]). Factual by
    /// default.
    #[must_use]
    pub fn mask(&self) -> InterventionMask {
        self.mask
    }

    /// Sets the intervention mask: re-running an otherwise identical
    /// campaign with one class suppressed is the single-flip
    /// counterfactual the F10 harness measures.
    #[must_use]
    pub fn with_mask(mut self, mask: InterventionMask) -> Self {
        self.mask = mask;
        self
    }

    /// The scheduled fault events.
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The channel model the campaign's traffic crosses.
    #[must_use]
    pub fn channel(&self) -> &ChannelPlan {
        &self.channel
    }

    /// Adds one fault event.
    #[must_use]
    pub fn fault(mut self, e: FaultEvent) -> Self {
        self.faults = self.faults.and(e);
        self
    }

    /// Merges a whole fault plan into the campaign.
    #[must_use]
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        self.faults = self.faults.merged(plan);
        self
    }

    /// Sets the default link model on every channel link (keeps the
    /// campaign's salt and any scheduled partitions).
    #[must_use]
    pub fn with_loss(mut self, model: LinkModel) -> Self {
        self.channel = self.channel.with_default(model);
        self
    }

    /// Replaces the channel plan wholesale (for link-level overrides
    /// built directly on [`ChannelPlan`]).
    #[must_use]
    pub fn with_channel(mut self, channel: ChannelPlan) -> Self {
        self.channel = channel;
        self
    }

    /// Schedules a zone outage: backend nodes
    /// `first .. first + count` dead for `duration` ticks from `at`.
    #[must_use]
    pub fn zone_outage(self, at: Tick, first: usize, count: usize, duration: u64) -> Self {
        self.fault(FaultEvent::zone_outage(at, first, count, duration))
    }

    /// Schedules a network partition silencing `nodes` for
    /// `duration` ticks from `start` (channel-side: frames are
    /// dropped, not delayed).
    #[must_use]
    pub fn net_partition(mut self, start: u64, duration: u64, nodes: Vec<usize>) -> Self {
        self.channel = self.channel.with_partition(start, duration, nodes);
        self
    }

    /// Schedules a model corruption against `controller`.
    #[must_use]
    pub fn corruption(self, at: Tick, controller: usize, kind: ModelCorruptionKind) -> Self {
        self.fault(FaultEvent::model_corruption(at, controller, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_onset() {
        let plan = FaultPlan::new(vec![
            FaultEvent::core_fail(Tick(50), 1),
            FaultEvent::camera_fail(Tick(10), 0),
        ]);
        assert_eq!(plan.events()[0].at, Tick(10));
        assert_eq!(plan.events()[1].at, Tick(50));
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn events_at_filters_by_tick() {
        let plan = FaultPlan::none()
            .and(FaultEvent::link_cut(Tick(5), 0, 1))
            .and(FaultEvent::link_restore(Tick(9), 0, 1))
            .and(FaultEvent::core_fail(Tick(5), 2));
        assert_eq!(plan.events_at(Tick(5)).count(), 2);
        assert_eq!(plan.events_at(Tick(9)).count(), 1);
        assert_eq!(plan.events_at(Tick(6)).count(), 0);
    }

    #[test]
    fn changes_in_window() {
        let plan = FaultPlan::none().and(FaultEvent::zone_outage(Tick(100), 0, 4, 50));
        assert!(plan.changes_in(Tick(0), Tick(101)));
        assert!(!plan.changes_in(Tick(101), Tick(500)));
    }

    #[test]
    fn zone_down_window_and_bounds() {
        let plan = FaultPlan::none().and(FaultEvent::zone_outage(Tick(100), 2, 3, 50));
        // Half-open in both node range and time.
        assert!(!plan.zone_down_at(2, Tick(99)));
        assert!(plan.zone_down_at(2, Tick(100)));
        assert!(plan.zone_down_at(4, Tick(149)));
        assert!(!plan.zone_down_at(4, Tick(150)));
        assert!(!plan.zone_down_at(1, Tick(120)));
        assert!(!plan.zone_down_at(5, Tick(120)));
        // Overlapping outages union.
        let plan = plan.and(FaultEvent::zone_outage(Tick(140), 4, 2, 30));
        assert!(plan.zone_down_at(4, Tick(160)));
        assert!(plan.zone_down_at(5, Tick(145)));
        assert!(!plan.zone_down_at(2, Tick(160)));
    }

    #[test]
    fn merged_plans_stay_sorted() {
        let a = FaultPlan::none().and(FaultEvent::core_fail(Tick(50), 0));
        let b = FaultPlan::none().and(FaultEvent::core_fail(Tick(10), 1));
        let m = a.merged(&b);
        assert_eq!(m.events().len(), 2);
        assert_eq!(m.events()[0].at, Tick(10));
    }

    #[test]
    fn fault_campaign_composes_faults_and_channel() {
        use simkernel::SeedTree;
        let seeds = SeedTree::new(11);
        let c = FaultCampaign::new("cascade", &seeds)
            .with_loss(LinkModel::lossy(0.3))
            .zone_outage(Tick(100), 0, 4, 50)
            .net_partition(120, 60, vec![2])
            .corruption(Tick(130), 0, ModelCorruptionKind::NanPoison)
            .fault(FaultEvent::camera_fail(Tick(5), 1));
        assert_eq!(c.name(), "cascade");
        assert_eq!(c.faults().events().len(), 3);
        assert!(c.faults().zone_down_at(3, Tick(110)));
        assert!(c.channel().partitioned_at(2, 7, Tick(130)));
        assert!(!c.channel().is_ideal());
        // Channel draws are salted from the seed subtree: same seed,
        // same campaign, same per-frame fates.
        let c2 = FaultCampaign::new("cascade", &SeedTree::new(11)).with_loss(LinkModel::lossy(0.3));
        let fate = |p: &ChannelPlan| {
            (0..64)
                .map(|s| p.transmit(0, 1, s, Tick(0)).arrivals.iter().count())
                .collect::<Vec<_>>()
        };
        assert_eq!(fate(c.channel()), fate(c2.channel()));
    }

    #[test]
    fn sensor_fault_window_and_precedence() {
        let plan = FaultPlan::none()
            .and(FaultEvent::sensor_fault(
                Tick(10),
                0,
                SensorFaultKind::StuckAt,
                20,
            ))
            .and(FaultEvent::sensor_fault(
                Tick(15),
                0,
                SensorFaultKind::Dropout,
                5,
            ));
        assert_eq!(plan.sensor_fault_at(0, Tick(9)), None);
        assert_eq!(
            plan.sensor_fault_at(0, Tick(10)),
            Some(SensorFaultKind::StuckAt)
        );
        // Overlap: the later onset wins.
        assert_eq!(
            plan.sensor_fault_at(0, Tick(16)),
            Some(SensorFaultKind::Dropout)
        );
        // Inner window over, outer fault still active.
        assert_eq!(
            plan.sensor_fault_at(0, Tick(25)),
            Some(SensorFaultKind::StuckAt)
        );
        assert_eq!(plan.sensor_fault_at(0, Tick(30)), None);
        assert_eq!(plan.sensor_fault_at(1, Tick(12)), None, "other sensor");
    }

    #[test]
    fn corrupt_modes() {
        let mut rng = SeedTree::new(3).rng("t");
        assert_eq!(
            SensorFaultKind::StuckAt.corrupt(5.0, 2.0, &mut rng),
            Some(2.0)
        );
        assert_eq!(
            SensorFaultKind::Bias { offset: 1.5 }.corrupt(5.0, 2.0, &mut rng),
            Some(6.5)
        );
        assert_eq!(SensorFaultKind::Dropout.corrupt(5.0, 2.0, &mut rng), None);
        let noisy = SensorFaultKind::Noise { sigma: 3.0 }
            .corrupt(5.0, 2.0, &mut rng)
            .expect("noise keeps reporting");
        assert!((noisy - 5.0).abs() <= 3.0);
    }

    #[test]
    fn random_outages_are_seed_deterministic() {
        let seeds = SeedTree::new(77);
        let a = FaultPlan::random_camera_outages(&seeds, 16, 4, (100, 500), 80);
        let b = FaultPlan::random_camera_outages(&seeds, 16, 4, (100, 500), 80);
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 8);
        let other = FaultPlan::random_camera_outages(&SeedTree::new(78), 16, 4, (100, 500), 80);
        assert_ne!(a, other, "different seed, different plan");
        for e in a.events() {
            match e.kind {
                FaultKind::CameraFail { camera } | FaultKind::CameraRecover { camera } => {
                    assert!(camera < 16);
                }
                _ => panic!("unexpected kind"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "fault window must be non-empty")]
    fn empty_window_panics() {
        let _ = FaultPlan::random_camera_outages(&SeedTree::new(1), 4, 1, (5, 5), 10);
    }

    #[test]
    fn model_frozen_at_windows() {
        let plan = FaultPlan::none()
            .and(FaultEvent::model_corruption(
                Tick(50),
                0,
                ModelCorruptionKind::StateFreeze { duration: 10 },
            ))
            .and(FaultEvent::model_corruption(
                Tick(60),
                1,
                ModelCorruptionKind::NanPoison,
            ));
        assert!(!plan.model_frozen_at(0, Tick(49)));
        assert!(plan.model_frozen_at(0, Tick(50)));
        assert!(plan.model_frozen_at(0, Tick(59)));
        assert!(!plan.model_frozen_at(0, Tick(60)));
        assert!(!plan.model_frozen_at(1, Tick(55)), "other controller");
        assert!(
            !plan.model_frozen_at(1, Tick(60)),
            "non-freeze corruption never freezes"
        );
    }

    #[test]
    fn channel_plan_is_pure_and_seed_deterministic() {
        let seeds = SeedTree::new(9);
        let plan = ChannelPlan::uniform(
            &seeds,
            LinkModel {
                loss: 0.3,
                dup: 0.1,
                delay_prob: 0.2,
                max_delay: 5,
            },
        );
        let again = ChannelPlan::uniform(
            &seeds,
            LinkModel {
                loss: 0.3,
                dup: 0.1,
                delay_prob: 0.2,
                max_delay: 5,
            },
        );
        assert_eq!(plan, again);
        for seq in 0..200u64 {
            let a = plan.transmit(1, 2, seq, Tick(10));
            let b = plan.transmit(1, 2, seq, Tick(10));
            assert_eq!(a, b, "same frame, same fate");
            for at in a.arrivals.iter() {
                assert!(at.value() >= 10 && at.value() <= 15);
            }
        }
        let other = ChannelPlan::uniform(&SeedTree::new(10), LinkModel::lossy(0.3));
        let differing = (0..200u64)
            .filter(|&s| plan.transmit(1, 2, s, Tick(0)) != other.transmit(1, 2, s, Tick(0)))
            .count();
        assert!(differing > 0, "different seed, different frame fates");
    }

    #[test]
    fn channel_plan_loss_rate_is_roughly_calibrated() {
        let plan = ChannelPlan::uniform(&SeedTree::new(4), LinkModel::lossy(0.25));
        let lost = (0..4000u64)
            .filter(|&s| plan.transmit(0, 1, s, Tick(0)).arrivals.is_empty())
            .count();
        let rate = lost as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed loss {rate}");
    }

    #[test]
    fn channel_plan_partitions_cut_boundary_links_only() {
        let plan = ChannelPlan::ideal().with_partition(50, 20, vec![0, 1]);
        assert!(!plan.is_ideal(), "partition makes the plan non-ideal");
        assert!(plan.transmit(0, 5, 3, Tick(50)).partitioned);
        assert!(plan.transmit(5, 1, 3, Tick(69)).partitioned);
        assert!(!plan.transmit(0, 1, 3, Tick(60)).partitioned, "both inside");
        assert!(
            !plan.transmit(4, 5, 3, Tick(60)).partitioned,
            "both outside"
        );
        assert!(!plan.transmit(0, 5, 3, Tick(70)).partitioned, "window over");
        assert!(plan.transmit(0, 5, 3, Tick(70)).arrives_at(Tick(70)));
    }

    #[test]
    fn channel_plan_link_overrides_win() {
        let plan = ChannelPlan::uniform(&SeedTree::new(2), LinkModel::lossy(1.0)).with_link(
            3,
            4,
            LinkModel::ideal(),
        );
        assert!(plan.transmit(0, 1, 7, Tick(0)).arrivals.is_empty());
        assert!(plan.transmit(3, 4, 7, Tick(0)).arrives_at(Tick(0)));
        assert!(
            plan.transmit(4, 3, 7, Tick(0)).arrivals.is_empty(),
            "overrides are directional"
        );
    }

    #[test]
    fn ideal_plan_is_ideal() {
        assert!(ChannelPlan::ideal().is_ideal());
        assert!(ChannelPlan::default().is_ideal());
        assert!(!ChannelPlan::uniform(&SeedTree::new(0), LinkModel::lossy(0.1)).is_ideal());
        // Zero-probability uniform plans still count as ideal.
        assert!(ChannelPlan::uniform(&SeedTree::new(0), LinkModel::ideal()).is_ideal());
    }

    #[test]
    #[should_panic(expected = "loss must be a probability")]
    fn channel_plan_rejects_bad_probability() {
        let _ = ChannelPlan::uniform(&SeedTree::new(0), LinkModel::lossy(1.5));
    }

    #[test]
    fn random_model_corruptions_are_seed_deterministic() {
        let seeds = SeedTree::new(21);
        let a = FaultPlan::random_model_corruptions(&seeds, 3, 12, (100, 900));
        let b = FaultPlan::random_model_corruptions(&seeds, 3, 12, (100, 900));
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 12);
        let other = FaultPlan::random_model_corruptions(&SeedTree::new(22), 3, 12, (100, 900));
        assert_ne!(a, other, "different seed, different plan");
        for e in a.events() {
            let FaultKind::ModelCorruption { controller, kind } = e.kind else {
                panic!("unexpected kind");
            };
            assert!(controller < 3);
            assert!(e.at.value() >= 100 && e.at.value() < 900);
            match kind {
                ModelCorruptionKind::NanPoison => {}
                ModelCorruptionKind::WeightScramble { gain } => {
                    assert!((5.0..50.0).contains(&gain));
                }
                ModelCorruptionKind::StateFreeze { duration } => {
                    assert!((20..80).contains(&duration));
                }
            }
        }
    }

    #[test]
    fn schedule_wakes_covers_onsets_and_restore_edges() {
        use simkernel::SimScheduler;
        let plan = FaultPlan::none()
            .and(FaultEvent::camera_fail(Tick(10), 3))
            .and(FaultEvent::camera_recover(Tick(40), 3))
            .and(FaultEvent::zone_outage(Tick(20), 5, 2, 15));
        let mut sched: SimScheduler<usize> = SimScheduler::new();
        let n = plan.schedule_wakes(&mut sched, 0, |e, keys| match e.kind {
            FaultKind::CameraFail { camera } | FaultKind::CameraRecover { camera } => {
                keys.push(camera);
            }
            FaultKind::ZoneOutage { first, count, .. } => keys.extend(first..first + count),
            _ => {}
        });
        // camera fail + recover (1 key each) + outage onset and end (2
        // keys each) = 6 wakes.
        assert_eq!(n, 6);
        let mut fired = Vec::new();
        while let Some((at, _, key)) = sched.pop_due(Tick(100)) {
            fired.push((at, key));
        }
        assert_eq!(
            fired,
            vec![
                (Tick(10), 3),
                (Tick(20), 5),
                (Tick(20), 6),
                (Tick(35), 5), // restore edge: onset 20 + duration 15
                (Tick(35), 6),
                (Tick(40), 3),
            ]
        );
    }

    #[test]
    fn end_tick_only_for_duration_faults() {
        assert_eq!(FaultEvent::camera_fail(Tick(5), 0).end_tick(), None);
        assert_eq!(
            FaultEvent::zone_outage(Tick(5), 0, 1, 7).end_tick(),
            Some(Tick(12))
        );
        assert_eq!(
            FaultEvent::sensor_fault(Tick(3), 0, SensorFaultKind::StuckAt, 4).end_tick(),
            Some(Tick(7))
        );
    }
}
