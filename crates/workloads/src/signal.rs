//! Composable scalar signal generators for model-level experiments.
//!
//! Experiment F3 (meta-self-awareness under concept drift) needs a
//! signal whose *generating process itself* changes regime — flat,
//! trending, oscillating — so that no single fixed forecaster is best
//! everywhere. [`SignalSpec`] describes such piecewise processes;
//! [`SignalGen`] renders them with additive noise.

use rand::Rng as _;
use simkernel::rng::Rng;
use simkernel::Tick;

/// One regime of a piecewise signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignalSpec {
    /// Constant level.
    Flat {
        /// The level.
        level: f64,
    },
    /// Linear trend from `start`, `slope` per tick (relative to regime
    /// onset).
    Trend {
        /// Value at regime onset.
        start: f64,
        /// Change per tick.
        slope: f64,
    },
    /// Sinusoid around `center`.
    Oscillation {
        /// Midline.
        center: f64,
        /// Amplitude.
        amplitude: f64,
        /// Period in ticks.
        period: f64,
    },
}

impl SignalSpec {
    /// Noise-free value `elapsed` ticks into this regime.
    #[must_use]
    pub fn value(&self, elapsed: u64) -> f64 {
        match *self {
            SignalSpec::Flat { level } => level,
            SignalSpec::Trend { start, slope } => start + slope * elapsed as f64,
            SignalSpec::Oscillation {
                center,
                amplitude,
                period,
            } => center + amplitude * (2.0 * std::f64::consts::PI * elapsed as f64 / period).sin(),
        }
    }
}

/// A piecewise-regime signal generator with additive uniform noise.
///
/// # Example
///
/// ```
/// use workloads::signal::{SignalGen, SignalSpec};
/// use simkernel::{SeedTree, Tick};
///
/// let mut g = SignalGen::new(
///     vec![
///         (0, SignalSpec::Flat { level: 5.0 }),
///         (100, SignalSpec::Trend { start: 5.0, slope: 1.0 }),
///     ],
///     0.0,
///     SeedTree::new(1).rng("sig"),
/// );
/// assert_eq!(g.sample(Tick(50)), 5.0);
/// assert_eq!(g.sample(Tick(110)), 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct SignalGen {
    regimes: Vec<(u64, SignalSpec)>,
    noise: f64,
    rng: Rng,
}

impl SignalGen {
    /// Creates a generator from `(onset_tick, spec)` regimes and a
    /// noise half-width.
    ///
    /// # Panics
    ///
    /// Panics if `regimes` is empty, not sorted by onset, or does not
    /// start at tick 0; or if `noise < 0`.
    #[must_use]
    pub fn new(regimes: Vec<(u64, SignalSpec)>, noise: f64, rng: Rng) -> Self {
        assert!(!regimes.is_empty(), "need at least one regime");
        assert_eq!(regimes[0].0, 0, "first regime must start at tick 0");
        assert!(
            regimes.windows(2).all(|w| w[0].0 < w[1].0),
            "regimes must be strictly sorted by onset"
        );
        assert!(noise >= 0.0, "noise must be non-negative");
        Self {
            regimes,
            noise,
            rng,
        }
    }

    /// The active regime index at time `t`.
    #[must_use]
    pub fn regime_at(&self, t: Tick) -> usize {
        let mut idx = 0;
        for (i, &(onset, _)) in self.regimes.iter().enumerate() {
            if t.value() >= onset {
                idx = i;
            } else {
                break;
            }
        }
        idx
    }

    /// Times at which the regime changes (excluding t=0) — the ground
    /// truth drift points for detector evaluation.
    #[must_use]
    pub fn change_points(&self) -> Vec<Tick> {
        self.regimes.iter().skip(1).map(|&(t, _)| Tick(t)).collect()
    }

    /// Noise-free value at `t`.
    #[must_use]
    pub fn truth(&self, t: Tick) -> f64 {
        let idx = self.regime_at(t);
        let (onset, spec) = self.regimes[idx];
        spec.value(t.value() - onset)
    }

    /// Noisy sample at `t`.
    pub fn sample(&mut self, t: Tick) -> f64 {
        let base = self.truth(t);
        if self.noise == 0.0 {
            base
        } else {
            base + self.rng.gen_range(-self.noise..=self.noise)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::SeedTree;

    fn rng() -> Rng {
        SeedTree::new(5).rng("sig-test")
    }

    fn three_regimes() -> SignalGen {
        SignalGen::new(
            vec![
                (0, SignalSpec::Flat { level: 2.0 }),
                (
                    100,
                    SignalSpec::Trend {
                        start: 2.0,
                        slope: 0.5,
                    },
                ),
                (
                    200,
                    SignalSpec::Oscillation {
                        center: 50.0,
                        amplitude: 3.0,
                        period: 20.0,
                    },
                ),
            ],
            0.0,
            rng(),
        )
    }

    #[test]
    fn regime_boundaries() {
        let g = three_regimes();
        assert_eq!(g.regime_at(Tick(0)), 0);
        assert_eq!(g.regime_at(Tick(99)), 0);
        assert_eq!(g.regime_at(Tick(100)), 1);
        assert_eq!(g.regime_at(Tick(250)), 2);
        assert_eq!(g.change_points(), vec![Tick(100), Tick(200)]);
    }

    #[test]
    fn truth_per_regime() {
        let g = three_regimes();
        assert_eq!(g.truth(Tick(10)), 2.0);
        assert_eq!(g.truth(Tick(110)), 7.0); // 2 + 0.5*10
                                             // Oscillation at onset = center.
        assert!((g.truth(Tick(200)) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn oscillation_oscillates() {
        let spec = SignalSpec::Oscillation {
            center: 0.0,
            amplitude: 1.0,
            period: 4.0,
        };
        assert!((spec.value(1) - 1.0).abs() < 1e-9);
        assert!((spec.value(3) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn noise_bounds_hold() {
        let mut g = SignalGen::new(vec![(0, SignalSpec::Flat { level: 10.0 })], 0.5, rng());
        for t in 0..1000u64 {
            let v = g.sample(Tick(t));
            assert!((9.5..=10.5).contains(&v));
        }
    }

    #[test]
    fn zero_noise_is_exact() {
        let mut g = three_regimes();
        assert_eq!(g.sample(Tick(10)), 2.0);
    }

    #[test]
    #[should_panic(expected = "first regime must start at tick 0")]
    fn missing_zero_onset_panics() {
        let _ = SignalGen::new(vec![(5, SignalSpec::Flat { level: 1.0 })], 0.0, rng());
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn unsorted_regimes_panic() {
        let _ = SignalGen::new(
            vec![
                (0, SignalSpec::Flat { level: 1.0 }),
                (50, SignalSpec::Flat { level: 2.0 }),
                (50, SignalSpec::Flat { level: 3.0 }),
            ],
            0.0,
            rng(),
        );
    }
}
