//! # workloads — workload and disturbance generation
//!
//! The paper characterises 21st-century environments as *uncertain*
//! and subject to *ongoing change*: "workloads or other input may
//! change in their characteristics over time, or in response to
//! external factors" (Section II). This crate provides the synthetic
//! environments every experiment runs against:
//!
//! * [`rates`] — time-varying demand intensities (constant, diurnal,
//!   Markov-modulated, drifting) and Poisson sampling on top of them;
//! * [`disturbance`] — scheduled step/ramp/spike/regime events to
//!   inject into any scalar signal;
//! * [`faults`] — scheduled *component* faults (camera/core/link
//!   failures, zone outages, sensor corruption) for the robustness
//!   experiments;
//! * [`signal`] — composable scalar signal generators for model-level
//!   experiments (F3's drifting stream);
//! * [`trajectories`] — random-waypoint wanderers in the unit square
//!   for the camera-network simulator;
//! * [`tasks`] — phase-switching task mixes for the multicore
//!   simulator;
//! * [`traffic`] — flow matrices with surge events for the cognitive
//!   packet network.
//!
//! Everything is deterministic given a [`simkernel::SeedTree`].

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::panic)]
#![warn(missing_docs)]

pub mod disturbance;
pub mod faults;
pub mod rates;
pub mod signal;
pub mod tasks;
pub mod traffic;
pub mod trajectories;

pub use disturbance::{Disturbance, DisturbanceKind, Schedule};
pub use faults::{
    ChannelPlan, FaultCampaign, FaultEvent, FaultKind, FaultPlan, LinkModel, NetPartition,
    SensorFaultKind,
};
pub use rates::{DiurnalRate, DriftingRate, MmppRate, PoissonArrivals, RateFn};
pub use signal::{SignalGen, SignalSpec};
pub use tasks::{TaskClass, TaskMix, TaskStream};
pub use traffic::{FlowSpec, TrafficMatrix};
pub use trajectories::{Point, Wanderer};
