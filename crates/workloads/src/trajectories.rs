//! Random-waypoint wanderers in the unit square: the moving objects
//! the smart-camera network tracks.

use rand::Rng as _;
use simkernel::rng::Rng;

/// A point in the unit square.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in `[0, 1]`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1]`.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn distance(&self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Samples a uniform point in the unit square.
    pub fn random(rng: &mut Rng) -> Self {
        Self {
            x: rng.gen::<f64>(),
            y: rng.gen::<f64>(),
        }
    }
}

/// A random-waypoint mobile object: walks toward a waypoint at fixed
/// speed, picks a new waypoint on arrival. Optionally biased to a
/// "home region" (a sub-square it prefers), which creates the *spatial
/// heterogeneity of demand* the camera-network experiments rely on.
///
/// # Example
///
/// ```
/// use workloads::trajectories::Wanderer;
/// use simkernel::SeedTree;
///
/// let mut rng = SeedTree::new(1).rng("walk");
/// let mut w = Wanderer::new(0.02, &mut rng);
/// let start = w.position();
/// for _ in 0..100 {
///     w.step(&mut rng);
/// }
/// assert!(w.position().distance(start) > 0.0);
/// let p = w.position();
/// assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Wanderer {
    pos: Point,
    waypoint: Point,
    speed: f64,
    home: Option<(Point, f64)>,
}

impl Wanderer {
    /// Creates a wanderer at a random position moving at `speed`
    /// (distance per tick).
    ///
    /// # Panics
    ///
    /// Panics if `speed <= 0`.
    #[must_use]
    pub fn new(speed: f64, rng: &mut Rng) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        Self {
            pos: Point::random(rng),
            waypoint: Point::random(rng),
            speed,
            home: None,
        }
    }

    /// Biases future waypoints to the square of half-width `radius`
    /// around `center` with probability 0.8 (builder style).
    #[must_use]
    pub fn with_home(mut self, center: Point, radius: f64) -> Self {
        self.home = Some((center, radius));
        self
    }

    /// Current position.
    #[must_use]
    pub fn position(&self) -> Point {
        self.pos
    }

    fn pick_waypoint(&self, rng: &mut Rng) -> Point {
        if let Some((c, r)) = self.home {
            if rng.gen::<f64>() < 0.8 {
                return Point {
                    x: (c.x + rng.gen_range(-r..=r)).clamp(0.0, 1.0),
                    y: (c.y + rng.gen_range(-r..=r)).clamp(0.0, 1.0),
                };
            }
        }
        Point::random(rng)
    }

    /// Advances one tick; returns the new position.
    pub fn step(&mut self, rng: &mut Rng) -> Point {
        let d = self.pos.distance(self.waypoint);
        if d <= self.speed {
            self.pos = self.waypoint;
            self.waypoint = self.pick_waypoint(rng);
        } else {
            let f = self.speed / d;
            self.pos.x += (self.waypoint.x - self.pos.x) * f;
            self.pos.y += (self.waypoint.y - self.pos.y) * f;
        }
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::SeedTree;

    fn rng() -> Rng {
        SeedTree::new(9).rng("traj")
    }

    #[test]
    fn distance_math() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn stays_in_unit_square() {
        let mut r = rng();
        let mut w = Wanderer::new(0.05, &mut r);
        for _ in 0..2000 {
            let p = w.step(&mut r);
            assert!((0.0..=1.0).contains(&p.x));
            assert!((0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn moves_at_bounded_speed() {
        let mut r = rng();
        let mut w = Wanderer::new(0.03, &mut r);
        let mut prev = w.position();
        for _ in 0..500 {
            let p = w.step(&mut r);
            assert!(prev.distance(p) <= 0.03 + 1e-9);
            prev = p;
        }
    }

    #[test]
    fn homebody_stays_near_home() {
        let mut r = rng();
        let home = Point::new(0.2, 0.2);
        let mut w = Wanderer::new(0.05, &mut r).with_home(home, 0.1);
        let mut near = 0;
        let total = 3000;
        for _ in 0..total {
            let p = w.step(&mut r);
            if p.distance(home) < 0.3 {
                near += 1;
            }
        }
        assert!(
            near as f64 / f64::from(total) > 0.5,
            "homebody should spend most time near home ({near}/{total})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut r = SeedTree::new(seed).rng("w");
            let mut w = Wanderer::new(0.02, &mut r);
            for _ in 0..100 {
                w.step(&mut r);
            }
            w.position()
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_panics() {
        let mut r = rng();
        let _ = Wanderer::new(0.0, &mut r);
    }
}
