//! Phase-switching task mixes for the heterogeneous multicore
//! simulator.
//!
//! Agarwal's self-aware computing argument (paper Section III) turns
//! on workloads whose composition is unknown at design time and
//! changes during operation. A [`TaskStream`] emits tasks drawn from a
//! [`TaskMix`] that switches between phases (e.g. compute-heavy by
//! day, memory-bound batch at night).

use rand::Rng as _;
use serde::{Deserialize, Serialize};
use simkernel::rng::Rng;
use simkernel::Tick;

/// A class of task with distinct resource behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskClass {
    /// CPU-bound: scales with core speed, high dynamic power.
    Compute,
    /// Memory-bound: insensitive to core speed, moderate power.
    Memory,
    /// Latency-critical interactive work: small, deadline-sensitive.
    Interactive,
}

impl TaskClass {
    /// All classes.
    pub const ALL: [TaskClass; 3] = [
        TaskClass::Compute,
        TaskClass::Memory,
        TaskClass::Interactive,
    ];

    /// Stable index of this class (for tabular learners).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            TaskClass::Compute => 0,
            TaskClass::Memory => 1,
            TaskClass::Interactive => 2,
        }
    }

    /// Short name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TaskClass::Compute => "compute",
            TaskClass::Memory => "memory",
            TaskClass::Interactive => "interactive",
        }
    }
}

/// One emitted task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Monotone id.
    pub id: u64,
    /// Behavioural class.
    pub class: TaskClass,
    /// Work units (service demand on a unit-speed core).
    pub work: f64,
    /// Arrival time.
    pub arrived: Tick,
}

/// A probability mix over task classes plus an arrival rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskMix {
    /// Expected arrivals per tick.
    pub rate: f64,
    /// Probability weights for [compute, memory, interactive];
    /// normalised internally.
    pub weights: [f64; 3],
    /// Mean work units per task.
    pub mean_work: f64,
}

impl TaskMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if `rate < 0`, all weights are zero or any negative, or
    /// `mean_work <= 0`.
    #[must_use]
    pub fn new(rate: f64, weights: [f64; 3], mean_work: f64) -> Self {
        assert!(rate >= 0.0, "rate must be non-negative");
        assert!(
            weights.iter().all(|&w| w >= 0.0),
            "weights must be non-negative"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "weights must not all be zero"
        );
        assert!(mean_work > 0.0, "mean work must be positive");
        Self {
            rate,
            weights,
            mean_work,
        }
    }

    fn sample_class(&self, rng: &mut Rng) -> TaskClass {
        let total: f64 = self.weights.iter().sum();
        let mut u = rng.gen::<f64>() * total;
        for (i, &w) in self.weights.iter().enumerate() {
            if u < w {
                return TaskClass::ALL[i];
            }
            u -= w;
        }
        TaskClass::Interactive
    }
}

/// Emits tasks per tick from a phase schedule of mixes.
///
/// # Example
///
/// ```
/// use workloads::tasks::{TaskMix, TaskStream};
/// use simkernel::{SeedTree, Tick};
///
/// let stream = TaskStream::new(
///     vec![
///         (0, TaskMix::new(2.0, [1.0, 0.0, 0.0], 4.0)),
///         (100, TaskMix::new(2.0, [0.0, 1.0, 0.0], 4.0)),
///     ],
///     SeedTree::new(1).rng("tasks"),
/// );
/// let mut stream = stream;
/// let early = stream.emit(Tick(10));
/// let late = stream.emit(Tick(150));
/// assert!(early.iter().all(|t| t.class.name() == "compute"));
/// assert!(late.iter().all(|t| t.class.name() == "memory"));
/// ```
#[derive(Debug, Clone)]
pub struct TaskStream {
    phases: Vec<(u64, TaskMix)>,
    rng: Rng,
    next_id: u64,
}

impl TaskStream {
    /// Creates a stream from `(onset_tick, mix)` phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty, unsorted, or does not start at 0.
    #[must_use]
    pub fn new(phases: Vec<(u64, TaskMix)>, rng: Rng) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        assert_eq!(phases[0].0, 0, "first phase must start at tick 0");
        assert!(
            phases.windows(2).all(|w| w[0].0 < w[1].0),
            "phases must be strictly sorted by onset"
        );
        Self {
            phases,
            rng,
            next_id: 0,
        }
    }

    /// The mix active at `t`.
    #[must_use]
    pub fn mix_at(&self, t: Tick) -> &TaskMix {
        let mut current = &self.phases[0].1;
        for (onset, mix) in &self.phases {
            if t.value() >= *onset {
                current = mix;
            } else {
                break;
            }
        }
        current
    }

    /// Phase-change times (ground truth for adaptation measurements).
    #[must_use]
    pub fn change_points(&self) -> Vec<Tick> {
        self.phases.iter().skip(1).map(|&(t, _)| Tick(t)).collect()
    }

    /// Emits this tick's tasks.
    pub fn emit(&mut self, t: Tick) -> Vec<Task> {
        let mix = self.mix_at(t).clone();
        let count = crate::rates::poisson(mix.rate, &mut self.rng);
        (0..count)
            .map(|_| {
                let id = self.next_id;
                self.next_id += 1;
                // Work ~ Exponential(mean_work), inverse-CDF.
                let u: f64 = self.rng.gen::<f64>().max(1e-12);
                Task {
                    id,
                    class: mix.sample_class(&mut self.rng),
                    work: -mix.mean_work * u.ln(),
                    arrived: t,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkernel::SeedTree;

    fn rng() -> Rng {
        SeedTree::new(3).rng("tasks")
    }

    #[test]
    fn class_index_roundtrip() {
        for c in TaskClass::ALL {
            assert_eq!(TaskClass::ALL[c.index()], c);
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn phases_switch_class_mix() {
        let mut s = TaskStream::new(
            vec![
                (0, TaskMix::new(3.0, [1.0, 0.0, 0.0], 2.0)),
                (50, TaskMix::new(3.0, [0.0, 0.0, 1.0], 2.0)),
            ],
            rng(),
        );
        for t in 0..50u64 {
            for task in s.emit(Tick(t)) {
                assert_eq!(task.class, TaskClass::Compute);
            }
        }
        for t in 50..100u64 {
            for task in s.emit(Tick(t)) {
                assert_eq!(task.class, TaskClass::Interactive);
            }
        }
        assert_eq!(s.change_points(), vec![Tick(50)]);
    }

    #[test]
    fn task_ids_are_unique_and_monotone() {
        let mut s = TaskStream::new(vec![(0, TaskMix::new(5.0, [1.0, 1.0, 1.0], 2.0))], rng());
        let mut last = None;
        for t in 0..100u64 {
            for task in s.emit(Tick(t)) {
                if let Some(prev) = last {
                    assert!(task.id > prev);
                }
                last = Some(task.id);
                assert_eq!(task.arrived, Tick(t));
            }
        }
        assert!(last.is_some());
    }

    #[test]
    fn work_is_positive_with_requested_mean() {
        let mut s = TaskStream::new(vec![(0, TaskMix::new(10.0, [1.0, 0.0, 0.0], 4.0))], rng());
        let mut works = Vec::new();
        for t in 0..2000u64 {
            for task in s.emit(Tick(t)) {
                assert!(task.work > 0.0);
                works.push(task.work);
            }
        }
        let mean = works.iter().sum::<f64>() / works.len() as f64;
        assert!((mean - 4.0).abs() < 0.3, "mean work {mean}");
    }

    #[test]
    fn mixed_weights_produce_all_classes() {
        let mut s = TaskStream::new(vec![(0, TaskMix::new(10.0, [1.0, 1.0, 1.0], 1.0))], rng());
        let mut seen = std::collections::HashSet::new();
        for t in 0..200u64 {
            for task in s.emit(Tick(t)) {
                seen.insert(task.class);
            }
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn zero_weights_panic() {
        let _ = TaskMix::new(1.0, [0.0, 0.0, 0.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "first phase must start at tick 0")]
    fn late_first_phase_panics() {
        let _ = TaskStream::new(vec![(10, TaskMix::new(1.0, [1.0, 0.0, 0.0], 1.0))], rng());
    }
}
