//! Scheduled disturbances: step changes, ramps, spikes and regime
//! switches injected into any scalar signal.
//!
//! Experiments use a [`Schedule`] to make the environment *change on
//! purpose* at known times, so adaptation speed can be measured
//! against ground truth (e.g. F2's attack onset, F3's drift points).

use serde::{Deserialize, Serialize};
use simkernel::Tick;

/// The shape of a disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DisturbanceKind {
    /// Permanent additive offset from `at` onwards.
    Step {
        /// Offset added to the signal.
        offset: f64,
    },
    /// Linear additive ramp growing from 0 at `at` to `offset` at
    /// `at + duration`, permanent afterwards.
    Ramp {
        /// Final offset.
        offset: f64,
        /// Ramp length in ticks.
        duration: u64,
    },
    /// Additive offset only during `[at, at + duration)`.
    Spike {
        /// Offset during the spike.
        offset: f64,
        /// Spike length in ticks.
        duration: u64,
    },
    /// Multiplicative factor from `at` onwards (e.g. 2.0 = demand
    /// doubles).
    Scale {
        /// Multiplier applied to the signal.
        factor: f64,
    },
}

/// A disturbance bound to an onset time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disturbance {
    /// Onset time.
    pub at: Tick,
    /// Shape.
    pub kind: DisturbanceKind,
}

impl Disturbance {
    /// Convenience constructor for a step.
    #[must_use]
    pub fn step(at: Tick, offset: f64) -> Self {
        Self {
            at,
            kind: DisturbanceKind::Step { offset },
        }
    }

    /// Convenience constructor for a ramp.
    #[must_use]
    pub fn ramp(at: Tick, offset: f64, duration: u64) -> Self {
        Self {
            at,
            kind: DisturbanceKind::Ramp { offset, duration },
        }
    }

    /// Convenience constructor for a spike.
    #[must_use]
    pub fn spike(at: Tick, offset: f64, duration: u64) -> Self {
        Self {
            at,
            kind: DisturbanceKind::Spike { offset, duration },
        }
    }

    /// Convenience constructor for a scale change.
    #[must_use]
    pub fn scale(at: Tick, factor: f64) -> Self {
        Self {
            at,
            kind: DisturbanceKind::Scale { factor },
        }
    }

    /// `(additive, multiplicative)` contribution of this disturbance
    /// at time `t`.
    #[must_use]
    pub fn contribution(&self, t: Tick) -> (f64, f64) {
        if t < self.at {
            return (0.0, 1.0);
        }
        let elapsed = t.value() - self.at.value();
        match self.kind {
            DisturbanceKind::Step { offset } => (offset, 1.0),
            DisturbanceKind::Ramp { offset, duration } => {
                if duration == 0 || elapsed >= duration {
                    (offset, 1.0)
                } else {
                    (offset * elapsed as f64 / duration as f64, 1.0)
                }
            }
            DisturbanceKind::Spike { offset, duration } => {
                if elapsed < duration {
                    (offset, 1.0)
                } else {
                    (0.0, 1.0)
                }
            }
            DisturbanceKind::Scale { factor } => (0.0, factor),
        }
    }
}

/// An ordered set of disturbances applied to a base signal.
///
/// # Example
///
/// ```
/// use workloads::{Disturbance, Schedule};
/// use simkernel::Tick;
///
/// let s = Schedule::new(vec![
///     Disturbance::step(Tick(100), 5.0),
///     Disturbance::spike(Tick(200), 10.0, 20),
/// ]);
/// assert_eq!(s.apply(1.0, Tick(50)), 1.0);
/// assert_eq!(s.apply(1.0, Tick(150)), 6.0);
/// assert_eq!(s.apply(1.0, Tick(210)), 16.0);
/// assert_eq!(s.apply(1.0, Tick(230)), 6.0); // spike over, step remains
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    events: Vec<Disturbance>,
}

impl Schedule {
    /// Creates a schedule from events (any order).
    #[must_use]
    pub fn new(events: Vec<Disturbance>) -> Self {
        Self { events }
    }

    /// An empty schedule (the stationary-environment control).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an event (builder style).
    #[must_use]
    pub fn and(mut self, d: Disturbance) -> Self {
        self.events.push(d);
        self
    }

    /// The scheduled events.
    #[must_use]
    pub fn events(&self) -> &[Disturbance] {
        &self.events
    }

    /// Applies all active disturbances to `base` at time `t`:
    /// `(base + Σ additive) · Π multiplicative`, floored at 0.
    #[must_use]
    pub fn apply(&self, base: f64, t: Tick) -> f64 {
        let mut add = 0.0;
        let mut mul = 1.0;
        for e in &self.events {
            let (a, m) = e.contribution(t);
            add += a;
            mul *= m;
        }
        ((base + add) * mul).max(0.0)
    }

    /// Whether any disturbance begins in the interval `[from, to)` —
    /// used by experiments to segment "before/after change" windows.
    #[must_use]
    pub fn changes_in(&self, from: Tick, to: Tick) -> bool {
        self.events.iter().any(|e| e.at >= from && e.at < to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_applies_permanently() {
        let d = Disturbance::step(Tick(10), 3.0);
        assert_eq!(d.contribution(Tick(9)), (0.0, 1.0));
        assert_eq!(d.contribution(Tick(10)), (3.0, 1.0));
        assert_eq!(d.contribution(Tick(1000)), (3.0, 1.0));
    }

    #[test]
    fn ramp_grows_linearly() {
        let d = Disturbance::ramp(Tick(0), 10.0, 10);
        assert_eq!(d.contribution(Tick(0)).0, 0.0);
        assert!((d.contribution(Tick(5)).0 - 5.0).abs() < 1e-12);
        assert_eq!(d.contribution(Tick(10)).0, 10.0);
        assert_eq!(d.contribution(Tick(99)).0, 10.0);
    }

    #[test]
    fn ramp_zero_duration_is_step() {
        let d = Disturbance::ramp(Tick(5), 4.0, 0);
        assert_eq!(d.contribution(Tick(5)).0, 4.0);
    }

    #[test]
    fn spike_is_transient() {
        let d = Disturbance::spike(Tick(10), 7.0, 5);
        assert_eq!(d.contribution(Tick(9)).0, 0.0);
        assert_eq!(d.contribution(Tick(12)).0, 7.0);
        assert_eq!(d.contribution(Tick(15)).0, 0.0);
    }

    #[test]
    fn scale_multiplies() {
        let s = Schedule::new(vec![Disturbance::scale(Tick(10), 2.0)]);
        assert_eq!(s.apply(3.0, Tick(5)), 3.0);
        assert_eq!(s.apply(3.0, Tick(10)), 6.0);
    }

    #[test]
    fn combined_events_compose() {
        let s = Schedule::none()
            .and(Disturbance::step(Tick(0), 1.0))
            .and(Disturbance::scale(Tick(0), 3.0));
        assert_eq!(s.apply(1.0, Tick(0)), 6.0); // (1+1)*3
    }

    #[test]
    fn apply_floors_at_zero() {
        let s = Schedule::new(vec![Disturbance::step(Tick(0), -100.0)]);
        assert_eq!(s.apply(1.0, Tick(0)), 0.0);
    }

    #[test]
    fn changes_in_window() {
        let s = Schedule::new(vec![Disturbance::step(Tick(50), 1.0)]);
        assert!(s.changes_in(Tick(0), Tick(100)));
        assert!(!s.changes_in(Tick(51), Tick(100)));
        assert!(s.changes_in(Tick(50), Tick(51)));
        assert!(!Schedule::none().changes_in(Tick(0), Tick(1000)));
    }

    #[test]
    fn events_accessor() {
        let s = Schedule::none().and(Disturbance::step(Tick(1), 1.0));
        assert_eq!(s.events().len(), 1);
    }
}
