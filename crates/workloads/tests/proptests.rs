//! Property-based tests for workload generators.

use proptest::prelude::*;
use simkernel::{SeedTree, Tick};
use workloads::disturbance::{Disturbance, DisturbanceKind, Schedule};
use workloads::rates::{poisson, DiurnalRate, DriftingRate, MmppRate, RateFn};
use workloads::signal::{SignalGen, SignalSpec};
use workloads::tasks::{TaskMix, TaskStream};
use workloads::trajectories::Wanderer;

fn disturbance_strategy() -> impl Strategy<Value = Disturbance> {
    (
        0u64..1000,
        prop_oneof![
            (-50.0f64..50.0).prop_map(|offset| DisturbanceKind::Step { offset }),
            ((-50.0f64..50.0), 0u64..100)
                .prop_map(|(offset, duration)| DisturbanceKind::Ramp { offset, duration }),
            ((-50.0f64..50.0), 1u64..100)
                .prop_map(|(offset, duration)| DisturbanceKind::Spike { offset, duration }),
            (0.0f64..4.0).prop_map(|factor| DisturbanceKind::Scale { factor }),
        ],
    )
        .prop_map(|(at, kind)| Disturbance { at: Tick(at), kind })
}

proptest! {
    #[test]
    fn schedules_never_go_negative(
        events in proptest::collection::vec(disturbance_strategy(), 0..8),
        base in 0.0f64..100.0,
        t in 0u64..2000,
    ) {
        let s = Schedule::new(events);
        prop_assert!(s.apply(base, Tick(t)) >= 0.0);
    }

    #[test]
    fn disturbances_inactive_before_onset(
        d in disturbance_strategy(),
        before in 0u64..1000,
    ) {
        prop_assume!(Tick(before) < d.at);
        prop_assert_eq!(d.contribution(Tick(before)), (0.0, 1.0));
    }

    #[test]
    fn diurnal_rate_nonnegative_and_periodic(
        base in 0.0f64..50.0,
        amplitude in 0.0f64..100.0,
        period in 1.0f64..1000.0,
        t in 0u64..5000,
    ) {
        let mut r = DiurnalRate::new(base, amplitude, period);
        let v = r.rate(Tick(t));
        prop_assert!(v >= 0.0);
        let next_cycle = t + period.round() as u64;
        if (period - period.round()).abs() < 1e-9 {
            prop_assert!((r.rate(Tick(next_cycle)) - v).abs() < 1e-6);
        }
    }

    #[test]
    fn mmpp_always_reports_a_configured_level(
        levels in proptest::collection::vec(0.0f64..100.0, 1..6),
        p in 0.0f64..1.0,
        seed in any::<u64>(),
        n in 1u64..200,
    ) {
        let mut r = MmppRate::new(levels.clone(), p, SeedTree::new(seed).rng("m"));
        for t in 0..n {
            let v = r.rate(Tick(t));
            prop_assert!(levels.iter().any(|&l| (l - v).abs() < 1e-12));
        }
    }

    #[test]
    fn drifting_rate_always_in_bounds(
        start_frac in 0.0f64..1.0,
        step in 0.0f64..5.0,
        min in 0.0f64..10.0,
        span in 0.1f64..50.0,
        seed in any::<u64>(),
    ) {
        let max = min + span;
        let start = min + start_frac * span;
        let mut r = DriftingRate::new(start, step, min, max, SeedTree::new(seed).rng("d"));
        for t in 0..300u64 {
            let v = r.rate(Tick(t));
            prop_assert!((min..=max).contains(&v));
        }
    }

    #[test]
    fn poisson_zero_for_zero_lambda(seed in any::<u64>()) {
        let mut rng = SeedTree::new(seed).rng("p");
        prop_assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn wanderer_never_escapes_unit_square(speed in 0.001f64..0.3, seed in any::<u64>()) {
        let mut rng = SeedTree::new(seed).rng("w");
        let mut w = Wanderer::new(speed, &mut rng);
        for _ in 0..300 {
            let p = w.step(&mut rng);
            prop_assert!((0.0..=1.0).contains(&p.x));
            prop_assert!((0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn task_stream_ids_unique_and_work_positive(
        rate in 0.0f64..10.0,
        mean_work in 0.1f64..10.0,
        seed in any::<u64>(),
    ) {
        let mut s = TaskStream::new(
            vec![(0, TaskMix::new(rate, [1.0, 1.0, 1.0], mean_work))],
            SeedTree::new(seed).rng("t"),
        );
        let mut seen = std::collections::HashSet::new();
        for t in 0..50u64 {
            for task in s.emit(Tick(t)) {
                prop_assert!(seen.insert(task.id));
                prop_assert!(task.work > 0.0);
                prop_assert_eq!(task.arrived, Tick(t));
            }
        }
    }

    #[test]
    fn signal_regimes_partition_time(
        onset2 in 1u64..500,
        extra in 1u64..500,
        t in 0u64..1500,
    ) {
        let onset3 = onset2 + extra;
        let g = SignalGen::new(
            vec![
                (0, SignalSpec::Flat { level: 1.0 }),
                (onset2, SignalSpec::Flat { level: 2.0 }),
                (onset3, SignalSpec::Flat { level: 3.0 }),
            ],
            0.0,
            SeedTree::new(1).rng("s"),
        );
        let expected = if t < onset2 { 0 } else if t < onset3 { 1 } else { 2 };
        prop_assert_eq!(g.regime_at(Tick(t)), expected);
        prop_assert_eq!(g.truth(Tick(t)), (expected + 1) as f64);
    }
}
