//! Routers: frozen shortest path, periodic re-routing, and CPN
//! reinforcement routing.
//!
//! The CPN router follows the scheme the paper describes (Section III):
//! a small fraction of traffic is *smart packets* that explore; every
//! delivered packet's measured per-hop delays reinforce per-node,
//! per-destination next-hop estimates; dumb packets follow the current
//! best estimates. Drops are punished, so attacked/congested links are
//! unlearned quickly.

use crate::graph::Graph;
use rand::Rng as _;
use simkernel::rng::Rng;
use simkernel::Tick;

/// Routing strategy selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingStrategy {
    /// Hop-count shortest paths computed once at start-up, never
    /// updated (the design-time baseline).
    StaticShortest,
    /// Queue-aware shortest paths recomputed every `period` ticks
    /// (the "periodic re-OSPF" middle ground).
    Periodic {
        /// Recomputation interval in ticks.
        period: u64,
    },
    /// Cognitive packet routing: reinforcement-learned next hops with
    /// a `smart_ratio` fraction of exploring packets.
    Cpn {
        /// Fraction of packets that explore (smart packets).
        smart_ratio: f64,
        /// Exploration rate of smart packets.
        epsilon: f64,
    },
    /// CPN routing under a meta-self-aware supervisor: the simulator
    /// watchdogs the learned delay estimates and falls back to
    /// periodic table routing while the model is benched (see
    /// `sim::run_cpn`). Routing behaviour while healthy is identical
    /// to [`RoutingStrategy::Cpn`].
    SupervisedCpn {
        /// Fraction of packets that explore (smart packets).
        smart_ratio: f64,
        /// Exploration rate of smart packets.
        epsilon: f64,
    },
}

impl RoutingStrategy {
    /// Canonical CPN configuration for F2.
    #[must_use]
    pub fn cpn_default() -> Self {
        RoutingStrategy::Cpn {
            smart_ratio: 0.1,
            epsilon: 0.1,
        }
    }

    /// Canonical supervised-CPN configuration (same routing knobs as
    /// [`RoutingStrategy::cpn_default`]).
    #[must_use]
    pub fn supervised_cpn_default() -> Self {
        RoutingStrategy::SupervisedCpn {
            smart_ratio: 0.1,
            epsilon: 0.1,
        }
    }

    /// Table label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            RoutingStrategy::StaticShortest => "static-shortest".into(),
            RoutingStrategy::Periodic { period } => format!("periodic({period})"),
            RoutingStrategy::Cpn { .. } => "cpn".into(),
            RoutingStrategy::SupervisedCpn { .. } => "supervised-cpn".into(),
        }
    }

    /// Instantiates the runtime router for `graph`.
    #[must_use]
    pub fn build(&self, graph: &Graph) -> Router {
        let n = graph.len();
        match *self {
            RoutingStrategy::StaticShortest => Router {
                kind: RouterKind::Table {
                    next: all_bfs_tables(graph),
                    period: None,
                },
            },
            RoutingStrategy::Periodic { period } => {
                assert!(period > 0, "period must be positive");
                Router {
                    kind: RouterKind::Table {
                        next: all_bfs_tables(graph),
                        period: Some(period),
                    },
                }
            }
            RoutingStrategy::Cpn {
                smart_ratio,
                epsilon,
            }
            | RoutingStrategy::SupervisedCpn {
                smart_ratio,
                epsilon,
            } => {
                assert!(
                    (0.0..=1.0).contains(&smart_ratio),
                    "smart ratio must be in [0,1]"
                );
                assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0,1]");
                // Optimistic init from hop counts so cold-start routes
                // are sensible.
                let mut q = vec![vec![Vec::new(); n]; n];
                #[allow(clippy::needless_range_loop)] // q is indexed by two loop variables at once
                for dst in 0..n {
                    let hops = hop_distances(graph, dst);
                    for u in 0..n {
                        q[u][dst] = graph
                            .neighbours(u)
                            .iter()
                            .map(|&v| {
                                if hops[v] == usize::MAX {
                                    1e6
                                } else {
                                    (hops[v] + 1) as f64
                                }
                            })
                            .collect();
                    }
                }
                Router {
                    kind: RouterKind::Cpn {
                        q,
                        smart_ratio,
                        epsilon,
                        penalty: vec![0.0; n],
                    },
                }
            }
        }
    }
}

fn all_bfs_tables(graph: &Graph) -> Vec<Vec<Option<usize>>> {
    // next[dst][node] = next hop from node toward dst.
    (0..graph.len())
        .map(|dst| graph.bfs_next_hops(dst))
        .collect()
}

fn hop_distances(graph: &Graph, dst: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.len()];
    let mut q = std::collections::VecDeque::new();
    dist[dst] = 0;
    q.push_back(dst);
    while let Some(u) = q.pop_front() {
        for &v in graph.neighbours(u) {
            if graph.link_down(u, v) {
                continue;
            }
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

#[derive(Clone)]
enum RouterKind {
    Table {
        next: Vec<Vec<Option<usize>>>,
        period: Option<u64>,
    },
    Cpn {
        /// `q[u][dst][k]` — estimated remaining delay from `u` to
        /// `dst` via the k-th neighbour of `u`.
        q: Vec<Vec<Vec<f64>>>,
        smart_ratio: f64,
        epsilon: f64,
        /// Transient per-router congestion penalty from the latest
        /// control-plane reports (see [`Router::set_congestion`]);
        /// all zeros when the control plane is ideal or absent.
        penalty: Vec<f64>,
    },
}

/// A runtime router. `Clone` is cheap enough to checkpoint: the CPN
/// state is one dense `f64` table.
#[derive(Clone)]
pub struct Router {
    kind: RouterKind,
}

/// Penalty delay (ticks) learned for a hop that led to a drop.
pub const DROP_PENALTY: f64 = 200.0;

impl Router {
    /// Decides whether a freshly injected packet is a smart packet.
    pub fn is_smart(&self, rng: &mut Rng) -> bool {
        match &self.kind {
            RouterKind::Table { .. } => false,
            RouterKind::Cpn { smart_ratio, .. } => rng.gen::<f64>() < *smart_ratio,
        }
    }

    /// Per-tick maintenance: periodic strategies recompute their
    /// tables from the live queue occupancy (`queue_len(u, v)`).
    pub fn maintain<Q: Fn(usize, usize) -> usize>(
        &mut self,
        graph: &Graph,
        now: Tick,
        queue_len: Q,
    ) {
        if let RouterKind::Table {
            next,
            period: Some(p),
        } = &mut self.kind
        {
            if now.value() > 0 && now.value().is_multiple_of(*p) {
                *next = (0..graph.len())
                    .map(|dst| {
                        graph.weighted_next_hops(dst, |u, v| 1.0 + queue_len(u, v) as f64 / 4.0)
                    })
                    .collect();
            }
        }
    }

    /// Installs the controller's believed per-router congestion as a
    /// *transient* decision-time penalty: a hop into router `v` costs
    /// its learned estimate plus `congestion[v]`. Unlike writing into
    /// the learned table, the penalty vanishes the moment fresher
    /// reports clear it — no re-learning needed when a jam moves or a
    /// partition heals. Table routers ignore this; they recompute
    /// from the same reports in [`Router::maintain`].
    pub fn set_congestion(&mut self, congestion: &[f64]) {
        if let RouterKind::Cpn { penalty, .. } = &mut self.kind {
            penalty.clear();
            penalty.extend_from_slice(congestion);
        }
    }

    /// Chooses the next hop for a packet at `at` heading to `dst`.
    /// `prev` is where the packet just came from (loop damping for
    /// learned routing); `smart` marks exploring packets.
    pub fn next_hop(
        &self,
        graph: &Graph,
        at: usize,
        dst: usize,
        prev: Option<usize>,
        smart: bool,
        rng: &mut Rng,
    ) -> Option<usize> {
        if at == dst {
            return None;
        }
        match &self.kind {
            RouterKind::Table { next, .. } => next[dst][at],
            RouterKind::Cpn {
                q,
                epsilon,
                penalty,
                ..
            } => {
                // CPN routers sense link liveness locally: cut edges
                // are never candidates, so packets detour immediately
                // (table routers keep pointing at the dead link until
                // the next recompute — or forever, for StaticShortest).
                let neighbours = graph.neighbours(at);
                let up = neighbours
                    .iter()
                    .filter(|&&v| !graph.link_down(at, v))
                    .count();
                if up == 0 {
                    return None;
                }
                let row = &q[at][dst];
                if smart && rng.gen::<f64>() < *epsilon {
                    let pick = rng.gen_range(0..up);
                    return neighbours
                        .iter()
                        .copied()
                        .filter(|&v| !graph.link_down(at, v))
                        .nth(pick);
                }
                // Prefer not to bounce straight back unless forced.
                let mut best: Option<(usize, f64)> = None;
                for (k, &v) in neighbours.iter().enumerate() {
                    if graph.link_down(at, v) {
                        continue;
                    }
                    if Some(v) == prev && up > 1 {
                        continue;
                    }
                    // A hop that terminates at `v` never waits in
                    // `v`'s outbound queues, so the congestion
                    // penalty does not apply to it.
                    let est = row[k] + if v == dst { 0.0 } else { penalty[v] };
                    if best.is_none_or(|(_, b)| est < b) {
                        best = Some((v, est));
                    }
                }
                best.map(|(v, _)| v)
            }
        }
    }

    /// Per-hop Q-routing update (Boyan & Littman): when a packet that
    /// entered `u`'s queue at some time arrives at `v` after
    /// `hop_delay` ticks, the estimate for `u → v` toward `dst` is
    /// pulled toward `hop_delay + min_w Q_v(dst, w)`. This propagates
    /// congestion information one hop per packet — fast enough to
    /// route around a forming hot-spot, unlike waiting for end-to-end
    /// delivery feedback.
    pub fn reinforce_hop(&mut self, graph: &Graph, u: usize, v: usize, dst: usize, hop_delay: f64) {
        let RouterKind::Cpn { q, .. } = &mut self.kind else {
            return;
        };
        const ALPHA: f64 = 0.3;
        let downstream = if v == dst {
            0.0
        } else {
            q[v][dst]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
                .min(DROP_PENALTY)
        };
        if let Some(k) = graph.neighbours(u).iter().position(|&x| x == v) {
            let target = hop_delay.max(1.0) + downstream;
            let cell = &mut q[u][dst][k];
            *cell += ALPHA * (target - *cell);
        }
    }

    /// Reinforces from a delivered packet: `hop_log` holds
    /// `(node, entered_at)` for every node on the path (destination
    /// last).
    pub fn reinforce_delivery(&mut self, graph: &Graph, dst: usize, hop_log: &[(usize, Tick)]) {
        let RouterKind::Cpn { q, .. } = &mut self.kind else {
            return;
        };
        let Some(&(_, arrived)) = hop_log.last() else {
            return;
        };
        const ALPHA: f64 = 0.2;
        for w in hop_log.windows(2) {
            let (u, entered_u) = w[0];
            let (v, _) = w[1];
            let remaining = arrived.value().saturating_sub(entered_u.value()).max(1) as f64;
            if let Some(k) = graph.neighbours(u).iter().position(|&x| x == v) {
                let cell = &mut q[u][dst][k];
                *cell += ALPHA * (remaining - *cell);
            }
        }
    }

    /// Punishes the hop that dropped a packet: the packet was at `u`
    /// heading to `v` toward `dst`.
    pub fn reinforce_drop(&mut self, graph: &Graph, u: usize, v: usize, dst: usize) {
        let RouterKind::Cpn { q, .. } = &mut self.kind else {
            return;
        };
        const ALPHA: f64 = 0.3;
        if let Some(k) = graph.neighbours(u).iter().position(|&x| x == v) {
            let cell = &mut q[u][dst][k];
            *cell += ALPHA * (DROP_PENALTY - *cell);
        }
    }

    /// Current delay estimate from `u` to `dst` via neighbour `v`
    /// (CPN only; `None` otherwise). Exposed for tests.
    #[must_use]
    pub fn estimate(&self, graph: &Graph, u: usize, v: usize, dst: usize) -> Option<f64> {
        match &self.kind {
            RouterKind::Cpn { q, .. } => graph
                .neighbours(u)
                .iter()
                .position(|&x| x == v)
                .map(|k| q[u][dst][k]),
            RouterKind::Table { .. } => None,
        }
    }

    /// The model's best-case delay estimate from `src` to `dst`
    /// (minimum over next-hop candidates). NaN-propagating: one
    /// poisoned cell on the route makes the estimate NaN, so a
    /// supervisor watching this signal sees the corruption instead of
    /// a healthy-looking neighbour masking it. `None` for table
    /// routers (they hold no delay model).
    #[must_use]
    pub fn route_estimate(&self, src: usize, dst: usize) -> Option<f64> {
        let RouterKind::Cpn { q, .. } = &self.kind else {
            return None;
        };
        let row = &q[src][dst];
        if row.is_empty() {
            return None;
        }
        let mut best = f64::INFINITY;
        for &e in row {
            if e.is_nan() {
                return Some(f64::NAN);
            }
            best = best.min(e);
        }
        Some(best)
    }

    /// Overwrites every learned delay estimate with NaN (the
    /// `NanPoison` model-corruption fault). No-op for table routers.
    pub fn poison_model(&mut self) {
        if let RouterKind::Cpn { q, .. } = &mut self.kind {
            for per_dst in q {
                for row in per_dst {
                    row.fill(f64::NAN);
                }
            }
        }
    }

    /// Scrambles the learned delay estimates (the `WeightScramble`
    /// fault): every cell is inflated by `gain` plus a
    /// neighbour-index-dependent offset, which both perturbs the
    /// relative ordering the routing relies on and blows the
    /// estimates away from measured delays. No-op for table routers.
    pub fn scramble_model(&mut self, gain: f64) {
        if let RouterKind::Cpn { q, .. } = &mut self.kind {
            for per_dst in q {
                for row in per_dst {
                    for (k, cell) in row.iter_mut().enumerate() {
                        *cell = *cell * gain + (k as f64 + 1.0) * gain;
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.kind {
            RouterKind::Table { period: None, .. } => "StaticShortest",
            RouterKind::Table { .. } => "Periodic",
            RouterKind::Cpn { .. } => "Cpn",
        };
        f.debug_struct("Router").field("kind", &kind).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        simkernel::SeedTree::new(17).rng("route")
    }

    #[test]
    fn static_router_follows_bfs() {
        let g = Graph::grid(3, 3);
        let r = RoutingStrategy::StaticShortest.build(&g);
        let mut rr = rng();
        let mut at = 0;
        let mut prev = None;
        let mut hops = 0;
        while at != 8 {
            let nxt = r.next_hop(&g, at, 8, prev, false, &mut rr).unwrap();
            prev = Some(at);
            at = nxt;
            hops += 1;
            assert!(hops <= 4);
        }
        assert_eq!(hops, 4);
        assert!(r.next_hop(&g, 8, 8, None, false, &mut rr).is_none());
    }

    #[test]
    fn cpn_initialises_to_sensible_routes() {
        let g = Graph::grid(3, 3);
        let r = RoutingStrategy::cpn_default().build(&g);
        let mut rr = rng();
        // Greedy (dumb) packets follow near-shortest paths cold.
        let nxt = r.next_hop(&g, 0, 8, None, false, &mut rr).unwrap();
        assert!(nxt == 1 || nxt == 3);
    }

    #[test]
    fn cpn_learns_to_avoid_punished_link() {
        let g = Graph::grid(3, 3);
        let mut r = RoutingStrategy::Cpn {
            smart_ratio: 0.0,
            epsilon: 0.0,
        }
        .build(&g);
        let mut rr = rng();
        // Punish the 0→1 hop toward 8 until it is unattractive.
        for _ in 0..20 {
            r.reinforce_drop(&g, 0, 1, 8);
        }
        assert_eq!(r.next_hop(&g, 0, 8, None, false, &mut rr), Some(3));
        assert!(r.estimate(&g, 0, 1, 8).unwrap() > 100.0);
    }

    #[test]
    fn cpn_delivery_reinforces_fast_paths() {
        let g = Graph::grid(1, 3); // line: 0-1-2
        let mut r = RoutingStrategy::cpn_default().build(&g);
        // Inflate the estimate with drops, then verify deliveries pull
        // it back toward the measured two-tick delay.
        for _ in 0..10 {
            r.reinforce_drop(&g, 0, 1, 2);
        }
        let inflated = r.estimate(&g, 0, 1, 2).unwrap();
        assert!(inflated > 50.0);
        let log = vec![(0, Tick(0)), (1, Tick(1)), (2, Tick(2))];
        for _ in 0..60 {
            r.reinforce_delivery(&g, 2, &log);
        }
        let after = r.estimate(&g, 0, 1, 2).unwrap();
        assert!((after - 2.0).abs() < 0.2, "estimate {after}");
    }

    #[test]
    fn cpn_avoids_immediate_backtrack() {
        let g = Graph::grid(1, 3);
        let r = RoutingStrategy::Cpn {
            smart_ratio: 0.0,
            epsilon: 0.0,
        }
        .build(&g);
        let mut rr = rng();
        // At node 1 coming from 0, heading to 0... only neighbour
        // options are 0 and 2; prev damping skips 0 — unless it is the
        // only way. Heading to dst=0 the best is still 0? prev=Some(0)
        // and len>1 means it picks 2. Heading to dst 2 from prev 0:
        let nxt = r.next_hop(&g, 1, 2, Some(0), false, &mut rr);
        assert_eq!(nxt, Some(2));
    }

    #[test]
    fn smart_packets_only_for_cpn() {
        let g = Graph::grid(2, 2);
        let mut rr = rng();
        let stat = RoutingStrategy::StaticShortest.build(&g);
        assert!(!stat.is_smart(&mut rr));
        let cpn = RoutingStrategy::Cpn {
            smart_ratio: 1.0,
            epsilon: 0.5,
        }
        .build(&g);
        assert!(cpn.is_smart(&mut rr));
    }

    #[test]
    fn periodic_reroutes_around_congestion() {
        let g = Graph::grid(3, 3);
        let mut r = RoutingStrategy::Periodic { period: 10 }.build(&g);
        let mut rr = rng();
        // Initially BFS may route 0→8 via 1. Congest every link out of
        // node 1 heavily and maintain at a period boundary.
        r.maintain(&g, Tick(10), |u, v| if u == 1 || v == 1 { 100 } else { 0 });
        let nxt = r.next_hop(&g, 0, 8, None, false, &mut rr).unwrap();
        assert_eq!(nxt, 3, "should avoid congested node 1");
    }

    #[test]
    fn cpn_routes_around_cut_links_immediately() {
        let mut g = Graph::grid(3, 3);
        let r = RoutingStrategy::Cpn {
            smart_ratio: 0.0,
            epsilon: 0.0,
        }
        .build(&g);
        let mut rr = rng();
        // Cold init would route 0→2 via 1; cut 0-1 and the router must
        // detour down through 3 without any learning.
        g.remove_edge(0, 1);
        assert_eq!(r.next_hop(&g, 0, 2, None, false, &mut rr), Some(3));
        // Fully isolated node: no hop at all.
        g.remove_edge(0, 3);
        assert_eq!(r.next_hop(&g, 0, 2, None, false, &mut rr), None);
        // Smart exploration also never picks a dead link.
        let smart = RoutingStrategy::Cpn {
            smart_ratio: 1.0,
            epsilon: 1.0,
        }
        .build(&g);
        g.restore_edge(0, 3);
        for _ in 0..20 {
            assert_eq!(smart.next_hop(&g, 0, 2, None, true, &mut rr), Some(3));
        }
    }

    #[test]
    fn table_router_keeps_pointing_at_cut_link_until_recompute() {
        let mut g = Graph::grid(3, 3);
        let mut r = RoutingStrategy::Periodic { period: 10 }.build(&g);
        let mut rr = rng();
        g.remove_edge(0, 1);
        g.remove_edge(0, 3);
        // Stale table still points somewhere (the dead link).
        assert!(r.next_hop(&g, 0, 8, None, false, &mut rr).is_some());
        // After recompute the isolated node has no route.
        r.maintain(&g, Tick(10), |_, _| 0);
        assert_eq!(r.next_hop(&g, 0, 8, None, false, &mut rr), None);
    }

    #[test]
    fn labels() {
        assert_eq!(RoutingStrategy::StaticShortest.label(), "static-shortest");
        assert_eq!(
            RoutingStrategy::Periodic { period: 50 }.label(),
            "periodic(50)"
        );
        assert_eq!(RoutingStrategy::cpn_default().label(), "cpn");
    }
}
