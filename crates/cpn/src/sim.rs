//! Packet-level simulation: per-link queues, drops, TTLs, attack
//! surges — and the F2 adapt-around-the-attack experiment.

use crate::graph::Graph;
use crate::routing::{Router, RoutingStrategy};
use selfaware::comms::{CommsNetwork, CommsPolicy};
use selfaware::explain::ExplanationLog;
use selfaware::replay::InterventionMask;
use selfaware::supervision::{Evidence, Supervisor, Verdict};
use simkernel::obs;
use simkernel::rng::SeedTree;
use simkernel::{MetricSet, Tick, TimeSeries};
use workloads::faults::{ChannelPlan, FaultKind, FaultPlan, ModelCorruptionKind};
use workloads::rates::poisson;

/// Maximum hops before a packet is discarded.
pub const TTL: usize = 64;
/// Per-link queue capacity, packets.
pub const QUEUE_CAP: usize = 120;
/// Per-link service rate, packets per tick.
pub const BANDWIDTH: usize = 3;

/// A flow of traffic, optionally time-windowed (attack flows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Packets per tick.
    pub rate: f64,
    /// Active window (`None` = always on).
    pub window: Option<(Tick, Tick)>,
    /// Whether this is hostile traffic (excluded from QoS metrics).
    pub hostile: bool,
}

impl Flow {
    /// A permanent background flow.
    #[must_use]
    pub fn background(src: usize, dst: usize, rate: f64) -> Self {
        Self {
            src,
            dst,
            rate,
            window: None,
            hostile: false,
        }
    }

    /// A windowed attack flow.
    #[must_use]
    pub fn attack(src: usize, dst: usize, rate: f64, from: Tick, to: Tick) -> Self {
        Self {
            src,
            dst,
            rate,
            window: Some((from, to)),
            hostile: true,
        }
    }

    /// Effective rate at time `t`.
    #[must_use]
    pub fn rate_at(&self, t: Tick) -> f64 {
        match self.window {
            Some((from, to)) if t < from || t >= to => 0.0,
            _ => self.rate,
        }
    }
}

/// A denial-of-service event targeting routers: while active, every
/// link incident to an attacked node has its service rate reduced to
/// `bandwidth` (the router's forwarding capacity is consumed by attack
/// processing, per Gelenbe & Loukas's DoS model).
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Attack start.
    pub from: Tick,
    /// Attack end (exclusive).
    pub to: Tick,
    /// Nodes under attack.
    pub nodes: Vec<usize>,
    /// Residual per-link service rate while attacked.
    pub bandwidth: usize,
}

impl Degradation {
    /// Whether the attack affects link `u → v` at time `t`.
    #[must_use]
    pub fn affects(&self, u: usize, v: usize, t: Tick) -> bool {
        t >= self.from && t < self.to && (self.nodes.contains(&u) || self.nodes.contains(&v))
    }
}

/// Configuration of a CPN scenario.
#[derive(Debug, Clone)]
pub struct CpnConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid cols.
    pub cols: usize,
    /// Simulation length.
    pub steps: u64,
    /// Traffic flows (background + optional hostile floods).
    pub flows: Vec<Flow>,
    /// Optional router-targeting DoS event.
    pub degradation: Option<Degradation>,
    /// Scheduled faults. `LinkCut` / `LinkRestore` cut links (packets
    /// already queued on a cut link stall until restoration; CPN
    /// routers detour immediately, table routers only at their next
    /// recompute); `ModelCorruption` poisons the CPN router's learned
    /// delay table. Other kinds are ignored by this simulator.
    pub faults: FaultPlan,
    /// Routing strategy.
    pub strategy: RoutingStrategy,
    /// The control-plane medium: per-tick router queue reports travel
    /// over this channel to the routing controller. Defaults to
    /// [`ChannelPlan::ideal`], which reproduces the historical
    /// live-queue-observation behaviour bit for bit.
    pub channel: ChannelPlan,
    /// How the control plane copes with report loss: naive
    /// fire-and-forget (routing on silently stale queue state), or
    /// the staleness-aware protocol (ack/retry plus congestion
    /// pessimism for routers it has not heard from).
    pub comms: CommsPolicy,
    /// Queue-report cadence in ticks. At 1 (the default) every
    /// router reports every tick, so a lost report is repaired by
    /// the next one almost immediately and channel loss barely
    /// registers; sparser cadences make each report carry real
    /// information and each loss cost real staleness.
    pub report_every: u64,
    /// Counterfactual intervention mask, applied to the routing
    /// supervisor and the comms layer. [`InterventionMask::allow_all`]
    /// (the default) reproduces historical behaviour bit for bit.
    pub mask: InterventionMask,
}

impl CpnConfig {
    /// Standard F2 scenario: 4×6 grid, one west→east background flow
    /// per row; during the middle third of the run a DoS attack pins
    /// the four central routers, collapsing their link capacity below
    /// the background demand that normally crosses them. A router that
    /// cannot re-plan keeps queueing into the attacked zone; adaptive
    /// routers detour through the healthy outer rows.
    #[must_use]
    pub fn standard(strategy: RoutingStrategy, steps: u64) -> Self {
        let cols = 6;
        let node = |r: usize, c: usize| r * cols + c;
        let (attack_from, attack_to) = Self::attack_window(steps);
        let flows = vec![
            Flow::background(node(0, 0), node(0, 5), 1.2),
            Flow::background(node(1, 0), node(1, 5), 1.2),
            Flow::background(node(2, 0), node(2, 5), 1.2),
            Flow::background(node(3, 0), node(3, 5), 1.2),
        ];
        Self {
            rows: 4,
            cols,
            steps,
            flows,
            degradation: Some(Degradation {
                from: attack_from,
                to: attack_to,
                nodes: vec![node(1, 2), node(1, 3), node(2, 2), node(2, 3)],
                bandwidth: 1,
            }),
            faults: FaultPlan::none(),
            strategy,
            channel: ChannelPlan::ideal(),
            comms: CommsPolicy::default(),
            report_every: 1,
            mask: InterventionMask::allow_all(),
        }
    }

    /// Attack window of [`CpnConfig::standard`] for a given length.
    #[must_use]
    pub fn attack_window(steps: u64) -> (Tick, Tick) {
        (Tick(steps / 3), Tick(2 * steps / 3))
    }

    /// [`CpnConfig::standard`] plus a *moving* flood: during the
    /// attack window, hostile through-traffic slams the degraded
    /// row-1 and row-2 centers in alternating 150-tick slabs, so the
    /// jammed region keeps shifting. A router that only learns from
    /// its own packets re-pays the discovery cost at every switch;
    /// a control plane with fresh — or prudently pessimistic — queue
    /// reports re-routes immediately. This is the communications
    /// ablation scenario (F8); the F2 tables keep using `standard`.
    #[must_use]
    pub fn contested(strategy: RoutingStrategy, steps: u64) -> Self {
        let mut cfg = Self::standard(strategy, steps);
        let cols = cfg.cols;
        let node = |r: usize, c: usize| r * cols + c;
        let (from, to) = Self::attack_window(steps);
        let period = 150;
        let mut t = from.value();
        let mut row1 = true;
        while t < to.value() {
            let end = (t + period).min(to.value());
            let (src, dst) = if row1 {
                (node(1, 1), node(1, 4))
            } else {
                (node(2, 1), node(2, 4))
            };
            cfg.flows
                .push(Flow::attack(src, dst, 6.0, Tick(t), Tick(end)));
            row1 = !row1;
            t = end;
        }
        // Sparse reporting: one report per router per 20 ticks, so a
        // dropped report leaves the controller genuinely blind for a
        // while instead of being repaired on the next tick.
        cfg.report_every = 20;
        cfg
    }
}

/// Outputs of a CPN run.
#[derive(Debug, Clone)]
pub struct CpnResult {
    /// Scalar metrics (see [`run_cpn`] for keys).
    pub metrics: MetricSet,
    /// Per-delivery end-to-end delay of background traffic over time —
    /// the F2 series.
    pub delay: TimeSeries,
    /// Comms-layer events: retries, expiries, partitions, heals.
    pub comms_log: ExplanationLog,
}

#[derive(Debug, Clone)]
struct Packet {
    dst: usize,
    smart: bool,
    hostile: bool,
    created: Tick,
    hop_log: Vec<(usize, Tick)>,
}

/// Sim-level meta-self-awareness for `SupervisedCpn`: the supervisor
/// checkpoints the live router, scores its best-case delay estimates
/// against realized deliveries, and — while the model is benched —
/// routes over a periodically recomputed table instead.
struct CpnSupervision {
    sup: Supervisor<Router>,
    log: ExplanationLog,
    /// Fallback used while the learned model is benched.
    baseline: Router,
    /// EWMA of realized end-to-end delivery delay (the supervisor's
    /// ground truth for the model's delay estimates).
    realized: Option<f64>,
}

/// Runs a scenario. Metric keys:
///
/// * `injected`, `delivered`, `dropped` — background packet counts;
/// * `delivery_ratio` — background delivered / injected;
/// * `mean_delay` — background end-to-end delay overall;
/// * `delay_pre`, `delay_attack`, `delay_post` — background delay per
///   attack phase;
/// * `utility` — delivery ratio minus normalised delay (single scalar
///   for cross-strategy ranking).
#[must_use]
pub fn run_cpn(cfg: &CpnConfig, seeds: &SeedTree) -> CpnResult {
    let mut graph = Graph::grid(cfg.rows, cfg.cols);
    let mut router = cfg.strategy.build(&graph);
    let mut inject_rng = seeds.rng("inject");
    let mut route_rng = seeds.rng("route");
    let mut supervision =
        matches!(cfg.strategy, RoutingStrategy::SupervisedCpn { .. }).then(|| {
            Box::new(CpnSupervision {
                sup: Supervisor::new("cpn-routing", router.clone()).with_mask(cfg.mask),
                log: ExplanationLog::new(512),
                baseline: RoutingStrategy::Periodic { period: 25 }.build(&graph),
                realized: None,
            })
        });
    let mut frozen_until: Option<Tick> = None;

    // queues[u][k] = packets waiting at u for the link to its k-th
    // neighbour.
    let mut queues: Vec<Vec<std::collections::VecDeque<Packet>>> = (0..graph.len())
        .map(|u| {
            (0..graph.neighbours(u).len())
                .map(|_| Default::default())
                .collect()
        })
        .collect();

    // Control plane: every router reports its per-link queue lengths
    // to the routing controller (comms id `graph.len()`) each tick,
    // over the configured channel. Routing decisions are computed
    // from this *believed* state, not the live queues — on the ideal
    // default the two are identical (a report sent at the end of tick
    // t lands the same tick, and `maintain` at tick t+1 reads exactly
    // what the live closure used to), so historical numbers are
    // unchanged bit for bit. On a lossy channel the believed state
    // goes stale, and the comms policy decides how routing copes.
    let ctrl = graph.len();
    let mut comms_net: CommsNetwork<Vec<usize>> = CommsNetwork::new(cfg.comms).with_mask(cfg.mask);
    // Delivery buffer reused every tick (no per-tick allocation).
    let mut comms_inbox: Vec<selfaware::comms::Delivered<Vec<usize>>> = Vec::new();
    let mut comms_log = ExplanationLog::new(2048);
    let ideal = cfg.channel.is_ideal();
    let aware = !cfg.comms.is_naive();
    let mut believed: Vec<Vec<usize>> = queues.iter().map(|qs| vec![0; qs.len()]).collect();
    let mut last_report_seq: Vec<Option<u64>> = vec![None; graph.len()];

    let (attack_from, attack_to) = CpnConfig::attack_window(cfg.steps);
    let mut injected = 0u64;
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut delay_sum = 0.0;
    let mut phase_sum = [0.0; 3];
    let mut phase_count = [0u64; 3];
    let mut delay_series = TimeSeries::new(cfg.strategy.label());

    let enqueue = |graph: &Graph,
                   queues: &mut Vec<Vec<std::collections::VecDeque<Packet>>>,
                   router: &mut Router,
                   frozen: bool,
                   u: usize,
                   v: usize,
                   pkt: Packet,
                   dropped: &mut u64| {
        let k = graph
            .neighbours(u)
            .iter()
            .position(|&x| x == v)
            .expect("v is a neighbour of u");
        if queues[u][k].len() >= QUEUE_CAP {
            if !pkt.hostile {
                *dropped += 1;
            }
            if !frozen {
                router.reinforce_drop(graph, u, v, pkt.dst);
            }
        } else {
            queues[u][k].push_back(pkt);
        }
    };

    for t in 0..cfg.steps {
        let now = Tick(t);

        // Phase spans (sense → decide → act) are profiling only —
        // wall-clock measurement into the thread-local obs sink,
        // never an input to routing (see `simkernel::obs`).
        let sense_span = obs::span("cpn:sense");

        // Apply scheduled link faults before anything routes.
        for ev in cfg.faults.events_at(now) {
            match ev.kind {
                FaultKind::LinkCut { a, b } => {
                    graph.remove_edge(a, b);
                }
                FaultKind::LinkRestore { a, b } => {
                    graph.restore_edge(a, b);
                }
                FaultKind::ModelCorruption { kind, .. } => match kind {
                    ModelCorruptionKind::NanPoison => router.poison_model(),
                    ModelCorruptionKind::WeightScramble { gain } => router.scramble_model(gain),
                    ModelCorruptionKind::StateFreeze { duration } => {
                        frozen_until = Some(Tick(t + duration));
                    }
                },
                _ => {}
            }
        }

        let frozen = frozen_until.is_some_and(|until| now.value() < until.value());
        let benched = supervision.as_ref().is_some_and(|s| s.sup.is_fallback());

        // The queue state routing sees: believed reports, with the
        // staleness-aware policy discounting silent routers toward
        // congestion (`QUEUE_CAP`) — a router it cannot hear from is
        // assumed jammed and routed around, rather than trusted to
        // still be as empty as its last report claimed.
        let effective: Vec<Vec<usize>> = if ideal || !aware {
            believed.clone()
        } else {
            believed
                .iter()
                .enumerate()
                .map(|(u, row)| {
                    let w = comms_net.freshness(ctrl, u, now);
                    row.iter()
                        .map(|&q| (w * q as f64 + (1.0 - w) * QUEUE_CAP as f64).round() as usize)
                        .collect()
                })
                .collect()
        };
        let qlen = |u: usize, v: usize| {
            graph
                .neighbours(u)
                .iter()
                .position(|&x| x == v)
                .map_or(0, |k| effective[u][k])
        };
        drop(sense_span);
        let decide_span = obs::span("cpn:decide");
        router.maintain(&graph, now, qlen);
        if let Some(s) = &mut supervision {
            s.baseline.maintain(&graph, now, qlen);
        }

        // Learned routers carry the controller's picture as a
        // decision-time penalty: a hop into a router whose queues are
        // believed `c` deep costs `c` extra ticks. Under the
        // staleness-aware policy a silent router's believed queues
        // drift toward `QUEUE_CAP`, so it is routed around rather
        // than trusted; the naive policy keeps trusting the last
        // report it happened to receive. Gated off on the ideal
        // channel, where smart-packet measurement alone reproduces
        // the clean-run tables bit for bit.
        if !ideal {
            // Routine staleness blends a few phantom ticks into every
            // believed queue; penalizing those would bias routing
            // globally. Only a router that looks genuinely jammed —
            // real congestion, or silence long enough for the
            // discount to dominate — is penalized.
            let cutoff = QUEUE_CAP / 2;
            let congestion: Vec<f64> = effective
                .iter()
                .map(|row| row.iter().copied().max().unwrap_or(0))
                .map(|c| if c >= cutoff { c as f64 } else { 0.0 })
                .collect();
            router.set_congestion(&congestion);
            if let Some(s) = &mut supervision {
                s.baseline.set_congestion(&congestion);
            }
        }

        drop(decide_span);
        let act_span = obs::span("cpn:act");

        // Inject new packets.
        for flow in &cfg.flows {
            let rate = flow.rate_at(now);
            if rate <= 0.0 {
                continue;
            }
            let count = poisson(rate, &mut inject_rng);
            for _ in 0..count {
                if !flow.hostile {
                    injected += 1;
                }
                let smart = if benched {
                    false // table fallback has no smart packets
                } else {
                    router.is_smart(&mut route_rng)
                };
                let pkt = Packet {
                    dst: flow.dst,
                    smart,
                    hostile: flow.hostile,
                    created: now,
                    hop_log: vec![(flow.src, now)],
                };
                let hop = if benched {
                    supervision
                        .as_ref()
                        .expect("benched implies supervised")
                        .baseline
                        .next_hop(&graph, flow.src, flow.dst, None, false, &mut route_rng)
                } else {
                    router.next_hop(&graph, flow.src, flow.dst, None, smart, &mut route_rng)
                };
                match hop {
                    Some(v) => {
                        enqueue(
                            &graph,
                            &mut queues,
                            &mut router,
                            frozen,
                            flow.src,
                            v,
                            pkt,
                            &mut dropped,
                        );
                    }
                    None => {
                        if !flow.hostile {
                            dropped += 1;
                        }
                    }
                }
            }
        }

        // Phase A: dequeue up to the link's current service rate.
        let mut arrivals: Vec<(usize, usize, Packet)> = Vec::new(); // (from, to, pkt)
        #[allow(clippy::needless_range_loop)] // u indexes both graph and queues
        for u in 0..graph.len() {
            for k in 0..queues[u].len() {
                let v = graph.neighbours(u)[k];
                // A cut link serves nothing: queued packets stall in
                // place until the link is restored (or TTL out once
                // the queue drains afterwards).
                let bw = if graph.link_down(u, v) {
                    0
                } else {
                    match &cfg.degradation {
                        Some(d) if d.affects(u, v, now) => d.bandwidth,
                        _ => BANDWIDTH,
                    }
                };
                for _ in 0..bw {
                    match queues[u][k].pop_front() {
                        Some(p) => arrivals.push((u, v, p)),
                        None => break,
                    }
                }
            }
        }

        // Phase B: deliver or forward.
        let mut tick_delay_sum = 0.0;
        let mut tick_delay_count = 0u64;
        for (u, v, mut pkt) in arrivals {
            // TD-style per-hop update from the measured hop delay
            // (queueing + service on the u→v link).
            if let Some(&(log_u, entered_u)) = pkt.hop_log.last() {
                debug_assert_eq!(log_u, u);
                let hop_delay = now.value().saturating_sub(entered_u.value()) as f64;
                if !frozen {
                    router.reinforce_hop(&graph, u, v, pkt.dst, hop_delay);
                }
            }
            pkt.hop_log.push((v, now));
            if v == pkt.dst {
                if !frozen {
                    router.reinforce_delivery(&graph, pkt.dst, &pkt.hop_log);
                }
                if !pkt.hostile {
                    delivered += 1;
                    let d = now.value().saturating_sub(pkt.created.value()).max(1) as f64;
                    delay_sum += d;
                    tick_delay_sum += d;
                    tick_delay_count += 1;
                    delay_series.push(now, d);
                    let phase = if now < attack_from {
                        0
                    } else if now < attack_to {
                        1
                    } else {
                        2
                    };
                    phase_sum[phase] += d;
                    phase_count[phase] += 1;
                }
                continue;
            }
            if pkt.hop_log.len() > TTL {
                if !pkt.hostile {
                    dropped += 1;
                }
                if !frozen {
                    router.reinforce_drop(&graph, u, v, pkt.dst);
                }
                continue;
            }
            let hop = if benched {
                supervision
                    .as_ref()
                    .expect("benched implies supervised")
                    .baseline
                    .next_hop(&graph, v, pkt.dst, Some(u), false, &mut route_rng)
            } else {
                router.next_hop(&graph, v, pkt.dst, Some(u), pkt.smart, &mut route_rng)
            };
            match hop {
                Some(w) => enqueue(
                    &graph,
                    &mut queues,
                    &mut router,
                    frozen,
                    v,
                    w,
                    pkt,
                    &mut dropped,
                ),
                None => {
                    if !pkt.hostile {
                        dropped += 1;
                    }
                }
            }
        }

        drop(act_span);

        // Control-plane exchange: each router reports its end-of-tick
        // queue lengths; the delivery queue hands the controller
        // whatever the channel let through (deduped and monotone —
        // a delayed old report never overwrites a newer one).
        if now.value().is_multiple_of(cfg.report_every) {
            for (u, qs) in queues.iter().enumerate() {
                let report: Vec<usize> = qs.iter().map(std::collections::VecDeque::len).collect();
                comms_net.send(&cfg.channel, u, ctrl, report, now, &mut comms_log);
            }
        }
        comms_inbox.clear();
        comms_net.step_into(&cfg.channel, now, &mut comms_log, &mut comms_inbox);
        for d in comms_inbox.drain(..) {
            if d.dst == ctrl && last_report_seq[d.src].is_none_or(|s| d.seq > s) {
                last_report_seq[d.src] = Some(d.seq);
                believed[d.src] = d.payload;
            }
        }

        // Meta-self-awareness: score the model's best-case delay
        // estimates against realized deliveries and let the
        // supervisor checkpoint / roll back / bench the live router.
        let _decide_span = obs::span("cpn:decide");
        if let Some(s) = &mut supervision {
            if tick_delay_count > 0 {
                let mean = tick_delay_sum / tick_delay_count as f64;
                s.realized = Some(match s.realized {
                    Some(r) => 0.9 * r + 0.1 * mean,
                    None => mean,
                });
            }
            let realized = s.realized.unwrap_or(0.0);
            let mut est_sum = 0.0;
            let mut est_n = 0u32;
            for flow in cfg.flows.iter().filter(|f| !f.hostile) {
                if let Some(e) = router.route_estimate(flow.src, flow.dst) {
                    est_sum += e;
                    est_n += 1;
                }
            }
            let estimate = if est_n > 0 {
                est_sum / f64::from(est_n)
            } else {
                realized
            };
            let error = (estimate - realized).abs();
            // Sync the live router into the supervisor so checkpoints
            // capture it, then copy back on rollback/fallback.
            s.sup.set_model(router.clone());
            let verdict = s.sup.observe(
                now,
                Evidence::scored(estimate, error).with_input(realized),
                &mut s.log,
            );
            if matches!(verdict, Verdict::RolledBack(_) | Verdict::FellBack(_)) {
                router = s.sup.model().clone();
            }
        }
    }

    let mut metrics = MetricSet::new();
    metrics.set("injected", injected as f64);
    metrics.set("delivered", delivered as f64);
    metrics.set("dropped", dropped as f64);
    let ratio = delivered as f64 / injected.max(1) as f64;
    metrics.set("delivery_ratio", ratio);
    let mean_delay = if delivered > 0 {
        delay_sum / delivered as f64
    } else {
        0.0
    };
    metrics.set("mean_delay", mean_delay);
    let phases = ["delay_pre", "delay_attack", "delay_post"];
    for (i, &name) in phases.iter().enumerate() {
        metrics.set(
            name,
            if phase_count[i] > 0 {
                phase_sum[i] / phase_count[i] as f64
            } else {
                0.0
            },
        );
    }
    metrics.set("utility", ratio - mean_delay / 100.0);
    let sup = supervision
        .as_ref()
        .map(|s| s.sup.stats())
        .unwrap_or_default();
    metrics.set("model_rollbacks", f64::from(sup.rollbacks));
    metrics.set("model_fallbacks", f64::from(sup.fallbacks));
    metrics.set("model_repromotions", f64::from(sup.repromotions));
    let cs = comms_net.stats();
    metrics.set("comms_sent", cs.sent as f64);
    metrics.set("comms_retries", cs.retries as f64);
    metrics.set("comms_expired", cs.expired as f64);
    metrics.set("comms_partition_hits", cs.partition_hits as f64);
    metrics.set("comms_duplicates", cs.duplicates as f64);

    CpnResult {
        metrics,
        delay: delay_series,
        comms_log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(s: RoutingStrategy, seed: u64, steps: u64) -> CpnResult {
        run_cpn(&CpnConfig::standard(s, steps), &SeedTree::new(seed))
    }

    #[test]
    fn flow_windows() {
        let f = Flow::attack(0, 5, 2.0, Tick(10), Tick(20));
        assert_eq!(f.rate_at(Tick(5)), 0.0);
        assert_eq!(f.rate_at(Tick(10)), 2.0);
        assert_eq!(f.rate_at(Tick(19)), 2.0);
        assert_eq!(f.rate_at(Tick(20)), 0.0);
        assert_eq!(Flow::background(0, 1, 1.0).rate_at(Tick(999)), 1.0);
    }

    #[test]
    fn quiet_network_delivers_everything() {
        let cfg = CpnConfig {
            rows: 3,
            cols: 3,
            steps: 500,
            flows: vec![Flow::background(0, 8, 0.5)],
            degradation: None,
            faults: FaultPlan::none(),
            strategy: RoutingStrategy::StaticShortest,
            channel: ChannelPlan::ideal(),
            comms: CommsPolicy::default(),
            report_every: 1,
            mask: InterventionMask::allow_all(),
        };
        let r = run_cpn(&cfg, &SeedTree::new(1));
        assert!(r.metrics.get("delivery_ratio").unwrap() > 0.95);
        // Shortest path is 4 hops; queueing negligible.
        assert!(r.metrics.get("mean_delay").unwrap() < 8.0);
    }

    #[test]
    fn attack_raises_static_delay() {
        let r = run(RoutingStrategy::StaticShortest, 2, 3000);
        let pre = r.metrics.get("delay_pre").unwrap();
        let during = r.metrics.get("delay_attack").unwrap();
        assert!(
            during > pre * 1.5,
            "attack should hurt static routing: pre {pre}, during {during}"
        );
    }

    #[test]
    fn cpn_absorbs_attack_better_than_static() {
        let mut wins = 0;
        for seed in 0..3 {
            let stat = run(RoutingStrategy::StaticShortest, seed, 3000);
            let cpn = run(RoutingStrategy::cpn_default(), seed, 3000);
            let s = stat.metrics.get("delay_attack").unwrap();
            let c = cpn.metrics.get("delay_attack").unwrap();
            let s_ratio = stat.metrics.get("delivery_ratio").unwrap();
            let c_ratio = cpn.metrics.get("delivery_ratio").unwrap();
            if c < s && c_ratio >= s_ratio - 0.05 {
                wins += 1;
            }
        }
        assert!(wins >= 2, "cpn absorbed the attack on {wins}/3 seeds");
    }

    #[test]
    fn cpn_recovers_after_attack() {
        let r = run(RoutingStrategy::cpn_default(), 4, 3000);
        let pre = r.metrics.get("delay_pre").unwrap();
        let post = r.metrics.get("delay_post").unwrap();
        assert!(
            post < pre * 2.5,
            "post-attack delay should return near baseline: pre {pre}, post {post}"
        );
    }

    #[test]
    fn cut_links_stall_static_but_cpn_detours() {
        use workloads::faults::FaultEvent;
        // 3×3 grid, flow 0→2 along the top row. Cut 1-2 for the middle
        // third: the static router keeps feeding the dead link, the
        // CPN router detours through the second row.
        let faulty = |strategy| CpnConfig {
            rows: 3,
            cols: 3,
            steps: 900,
            flows: vec![Flow::background(0, 2, 0.8)],
            degradation: None,
            faults: FaultPlan::none()
                .and(FaultEvent::link_cut(Tick(300), 1, 2))
                .and(FaultEvent::link_restore(Tick(600), 1, 2)),
            strategy,
            channel: ChannelPlan::ideal(),
            comms: CommsPolicy::default(),
            report_every: 1,
            mask: InterventionMask::allow_all(),
        };
        let stat = run_cpn(&faulty(RoutingStrategy::StaticShortest), &SeedTree::new(9));
        let cpn = run_cpn(&faulty(RoutingStrategy::cpn_default()), &SeedTree::new(9));
        let s = stat.metrics.get("delivery_ratio").unwrap();
        let c = cpn.metrics.get("delivery_ratio").unwrap();
        assert!(
            s < 0.9,
            "static should lose traffic while the link is down: {s}"
        );
        assert!(c > s + 0.1, "cpn should detour: cpn {c} vs static {s}");
    }

    #[test]
    fn periodic_recovers_from_cut_at_next_recompute() {
        use workloads::faults::FaultEvent;
        let cfg = CpnConfig {
            rows: 3,
            cols: 3,
            steps: 900,
            flows: vec![Flow::background(0, 2, 0.8)],
            degradation: None,
            faults: FaultPlan::none().and(FaultEvent::link_cut(Tick(300), 1, 2)),
            strategy: RoutingStrategy::Periodic { period: 50 },
            channel: ChannelPlan::ideal(),
            comms: CommsPolicy::default(),
            report_every: 1,
            mask: InterventionMask::allow_all(),
        };
        let r = run_cpn(&cfg, &SeedTree::new(9));
        // The cut is permanent, but a 50-tick recompute horizon keeps
        // the loss bounded to roughly one period of traffic.
        assert!(r.metrics.get("delivery_ratio").unwrap() > 0.85);
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        use workloads::faults::FaultEvent;
        let cfg = |steps| {
            let mut c = CpnConfig::standard(RoutingStrategy::cpn_default(), steps);
            c.faults = FaultPlan::none()
                .and(FaultEvent::link_cut(Tick(100), 8, 9))
                .and(FaultEvent::link_restore(Tick(400), 8, 9));
            c
        };
        let a = run_cpn(&cfg(600), &SeedTree::new(6));
        let b = run_cpn(&cfg(600), &SeedTree::new(6));
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(RoutingStrategy::cpn_default(), 6, 600);
        let b = run(RoutingStrategy::cpn_default(), 6, 600);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn delay_series_is_populated() {
        let r = run(RoutingStrategy::StaticShortest, 7, 1000);
        assert!(r.delay.len() > 100);
    }

    fn lossy_cfg(loss: f64, comms: CommsPolicy, seed: u64, steps: u64) -> CpnConfig {
        use workloads::faults::LinkModel;
        let mut cfg = CpnConfig::standard(RoutingStrategy::cpn_default(), steps);
        cfg.channel = ChannelPlan::uniform(&SeedTree::new(seed ^ 0xC9), LinkModel::lossy(loss));
        cfg.comms = comms;
        cfg
    }

    #[test]
    fn lossy_control_plane_is_deterministic_per_seed() {
        let a = run_cpn(
            &lossy_cfg(0.3, CommsPolicy::default(), 3, 900),
            &SeedTree::new(3),
        );
        let b = run_cpn(
            &lossy_cfg(0.3, CommsPolicy::default(), 3, 900),
            &SeedTree::new(3),
        );
        assert_eq!(a.metrics, b.metrics);
        assert!(
            a.metrics.get("comms_retries").unwrap() > 0.0,
            "30% report loss must trigger retransmissions"
        );
        assert!(
            !a.comms_log.find_by_action("comms:retry").is_empty(),
            "retries must be explained"
        );
    }

    #[test]
    fn staleness_aware_control_plane_beats_naive_under_loss_and_partition() {
        use workloads::faults::LinkModel;
        // The table router's only adaptivity is the communicated queue
        // state, so this is the strategy where channel quality is
        // decisive. (The CPN learner adapts from its own packets'
        // measured delays and shrugs off report loss — itself a
        // finding; see EXPERIMENTS.md F8.) The partition silences the
        // flood-ingress routers 7 and 13, whose queue reports carry
        // the congestion signal, across the first half of the attack.
        let steps = 3000;
        let (from, _) = CpnConfig::attack_window(steps);
        let mut wins = 0;
        for seed in 0..3u64 {
            let cfg = |comms| {
                let mut c = CpnConfig::contested(RoutingStrategy::Periodic { period: 50 }, steps);
                c.channel =
                    ChannelPlan::uniform(&SeedTree::new(seed ^ 0xC9), LinkModel::lossy(0.3))
                        .with_partition(from.value(), 750, vec![7, 13]);
                c.comms = comms;
                c
            };
            let naive = run_cpn(&cfg(CommsPolicy::Naive), &SeedTree::new(seed));
            let aware = run_cpn(&cfg(CommsPolicy::default()), &SeedTree::new(seed));
            let u_n = naive.metrics.get("utility").unwrap();
            let u_a = aware.metrics.get("utility").unwrap();
            if u_a > u_n {
                wins += 1;
            }
            assert!(
                aware.metrics.get("comms_partition_hits").unwrap() > 0.0,
                "partitioned reports must register"
            );
        }
        assert!(
            wins >= 2,
            "congestion pessimism should beat silent staleness ({wins}/3)"
        );
    }

    #[test]
    fn supervised_cpn_survives_model_corruption() {
        use workloads::faults::{FaultEvent, ModelCorruptionKind};
        let cfg = |strategy| {
            let mut c = CpnConfig::standard(strategy, 3000);
            c.faults = FaultPlan::none()
                .and(FaultEvent::model_corruption(
                    Tick(800),
                    0,
                    ModelCorruptionKind::NanPoison,
                ))
                .and(FaultEvent::model_corruption(
                    Tick(1900),
                    0,
                    ModelCorruptionKind::WeightScramble { gain: 50.0 },
                ));
            c
        };
        let sup = run_cpn(
            &cfg(RoutingStrategy::supervised_cpn_default()),
            &SeedTree::new(13),
        );
        let interventions = sup.metrics.get("model_rollbacks").unwrap()
            + sup.metrics.get("model_fallbacks").unwrap();
        assert!(
            interventions >= 1.0,
            "supervisor should intervene after corruption: {interventions}"
        );
        assert!(
            sup.metrics.get("delivery_ratio").unwrap() > 0.6,
            "supervised router should keep delivering: {:?}",
            sup.metrics.get("delivery_ratio")
        );
        let again = run_cpn(
            &cfg(RoutingStrategy::supervised_cpn_default()),
            &SeedTree::new(13),
        );
        assert_eq!(sup.metrics, again.metrics, "supervised runs deterministic");
    }
}

#[cfg(test)]
mod probe {
    use super::*;

    #[test]
    #[ignore]
    fn print_routing_metrics() {
        for s in [
            RoutingStrategy::StaticShortest,
            RoutingStrategy::Periodic { period: 50 },
            RoutingStrategy::cpn_default(),
        ] {
            let r = run_cpn(&CpnConfig::standard(s, 3000), &SeedTree::new(0));
            println!("--- {}", s.label());
            for (k, v) in r.metrics.iter() {
                println!("{k} = {v:.4}");
            }
        }
    }
}
