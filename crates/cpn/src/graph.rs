//! Network topology: undirected graphs with hop-count and weighted
//! shortest paths.

use std::collections::{BTreeMap, VecDeque};

/// An undirected graph over nodes `0..n`.
///
/// Edges can be taken *down* ([`Graph::remove_edge`]) and brought back
/// ([`Graph::restore_edge`]) without disturbing adjacency-list
/// positions: [`Graph::neighbours`] keeps returning the full list so
/// per-neighbour state held by callers (router Q-tables, link queues)
/// stays index-stable across faults, while path computations and
/// [`Graph::are_adjacent`] only see edges that are up. Use
/// [`Graph::edge_up`] to test an individual link.
///
/// # Example
///
/// ```
/// use cpn::Graph;
///
/// let g = Graph::grid(2, 3);
/// assert_eq!(g.len(), 6);
/// assert!(g.are_adjacent(0, 1));
/// assert!(!g.are_adjacent(0, 4));
/// let next = g.bfs_next_hops(5);
/// // From node 0 the shortest route to 5 starts right (1) or down (3).
/// assert!(next[0] == Some(1) || next[0] == Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    /// Cut edges, as normalised `(min, max)` pairs mapped to their
    /// *cut depth*: overlapping fault windows each add a cut, and the
    /// edge only comes back up when every cut has been restored.
    /// Entries stay in `adj` (so neighbour positions never shift) but
    /// are excluded from adjacency queries and path computations.
    down: BTreeMap<(usize, usize), u32>,
}

/// Normalised key for an undirected edge.
fn edge_key(u: usize, v: usize) -> (usize, usize) {
    (u.min(v), u.max(v))
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            down: BTreeMap::new(),
        }
    }

    /// Builds a `rows × cols` grid (4-neighbourhood), the F2 topology.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn grid(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        let mut g = Self::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let u = r * cols + c;
                if c + 1 < cols {
                    g.add_edge(u, u + 1);
                }
                if r + 1 < rows {
                    g.add_edge(u, u + cols);
                }
            }
        }
        g
    }

    /// Builds a ring of `n` nodes with chords every `skip` nodes — a
    /// small-world-ish topology with shorter diameter than the plain
    /// ring, useful for routing experiments beyond grids.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` or `skip < 2`.
    #[must_use]
    pub fn ring_with_chords(n: usize, skip: usize) -> Self {
        assert!(n >= 3, "ring needs at least 3 nodes");
        assert!(skip >= 2, "chord skip must be at least 2");
        let mut g = Self::new(n);
        for u in 0..n {
            g.add_edge(u, (u + 1) % n);
        }
        if skip < n {
            for u in (0..n).step_by(skip) {
                let v = (u + skip) % n;
                if v != u {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds an undirected edge (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        assert_ne!(u, v, "no self loops");
        if !self.adj[u].contains(&v) {
            self.adj[u].push(v);
            self.adj[v].push(u);
        }
        // Re-adding a cut edge brings it back up, clearing every
        // outstanding cut.
        self.down.remove(&edge_key(u, v));
    }

    /// Takes the edge `u — v` down (a link fault). The edge stays in
    /// the adjacency lists — neighbour positions are stable — but
    /// disappears from [`Graph::are_adjacent`], [`Graph::edge_count`]
    /// and all path computations.
    ///
    /// Cuts are *counted*: an edge cut twice (overlapping fault
    /// windows) needs two [`Graph::restore_edge`] calls to come back
    /// up. Returns `true` only when this call actually took the edge
    /// down (it existed and was up).
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        let structurally = self.adj.get(u).is_some_and(|ns| ns.contains(&v));
        if !structurally {
            return false;
        }
        let depth = self.down.entry(edge_key(u, v)).or_insert(0);
        *depth += 1;
        *depth == 1
    }

    /// Undoes one cut on the edge. Returns `true` only when this call
    /// actually brought the edge back up (its last outstanding cut
    /// was restored); an edge still held down by an overlapping fault
    /// stays down.
    pub fn restore_edge(&mut self, u: usize, v: usize) -> bool {
        let key = edge_key(u, v);
        match self.down.get_mut(&key) {
            None => false,
            Some(depth) if *depth > 1 => {
                *depth -= 1;
                false
            }
            Some(_) => {
                self.down.remove(&key);
                true
            }
        }
    }

    /// Whether the edge `u — v` exists *and is currently up*.
    #[must_use]
    pub fn edge_up(&self, u: usize, v: usize) -> bool {
        self.adj.get(u).is_some_and(|ns| ns.contains(&v)) && !self.link_down(u, v)
    }

    /// Whether the edge `u — v` is currently cut. Cheaper than
    /// [`Graph::edge_up`] when `v` is already known to be a neighbour
    /// of `u` (e.g. taken from [`Graph::neighbours`]).
    #[must_use]
    pub fn link_down(&self, u: usize, v: usize) -> bool {
        !self.down.is_empty() && self.down.contains_key(&edge_key(u, v))
    }

    /// Neighbours of `u`, *including* those across cut edges (so that
    /// per-neighbour state indexed by position survives link faults).
    /// Filter with [`Graph::edge_up`] when liveness matters.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn neighbours(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Whether `u` and `v` share an edge that is up.
    #[must_use]
    pub fn are_adjacent(&self, u: usize, v: usize) -> bool {
        self.edge_up(u, v)
    }

    /// Number of edges currently up.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2 - self.down.len()
    }

    /// For every node, the next hop on a shortest (hop-count) path to
    /// `dst` (`None` for `dst` itself and unreachable nodes).
    #[must_use]
    pub fn bfs_next_hops(&self, dst: usize) -> Vec<Option<usize>> {
        let n = self.adj.len();
        let mut next = vec![None; n];
        let mut dist = vec![usize::MAX; n];
        let mut queue = VecDeque::new();
        dist[dst] = 0;
        queue.push_back(dst);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if !self.edge_up(u, v) {
                    continue;
                }
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    next[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        next
    }

    /// For every node, the next hop to `dst` minimising the sum of
    /// `weight(u, v)` along the path (Dijkstra from `dst` over the
    /// reversed — identical, undirected — graph).
    ///
    /// `weight` must be positive.
    #[must_use]
    pub fn weighted_next_hops<W: Fn(usize, usize) -> f64>(
        &self,
        dst: usize,
        weight: W,
    ) -> Vec<Option<usize>> {
        let n = self.adj.len();
        let mut next = vec![None; n];
        let mut dist = vec![f64::INFINITY; n];
        let mut visited = vec![false; n];
        dist[dst] = 0.0;
        for _ in 0..n {
            // Extract the unvisited node with minimal distance.
            let u = (0..n)
                .filter(|&i| !visited[i] && dist[i].is_finite())
                .min_by(|&a, &b| {
                    dist[a]
                        .partial_cmp(&dist[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let Some(u) = u else { break };
            visited[u] = true;
            for &v in &self.adj[u] {
                if !self.edge_up(u, v) {
                    continue;
                }
                let w = weight(v, u); // cost of traversing v → u
                debug_assert!(w > 0.0, "weights must be positive");
                if dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                    next[v] = Some(u);
                }
            }
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        let g = Graph::grid(4, 6);
        assert_eq!(g.len(), 24);
        // Interior node degree 4, corner degree 2.
        assert_eq!(g.neighbours(7).len(), 4);
        assert_eq!(g.neighbours(0).len(), 2);
        // Edges: rows*(cols-1) + cols*(rows-1) = 4*5 + 6*3 = 38.
        assert_eq!(g.edge_count(), 38);
    }

    #[test]
    fn bfs_next_hops_point_toward_destination() {
        let g = Graph::grid(3, 3);
        let next = g.bfs_next_hops(8); // bottom-right corner
                                       // Walking the next-hop chain from node 0 must reach 8 in 4 hops.
        let mut at = 0;
        let mut hops = 0;
        while at != 8 {
            at = next[at].expect("reachable");
            hops += 1;
            assert!(hops <= 4, "too many hops");
        }
        assert_eq!(hops, 4);
        assert_eq!(next[8], None);
    }

    #[test]
    fn weighted_routes_avoid_heavy_edges() {
        // Triangle 0-1-2 plus chain: make direct edge 0-2 very heavy.
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        let next = g.weighted_next_hops(2, |u, v| {
            if (u == 0 && v == 2) || (u == 2 && v == 0) {
                10.0
            } else {
                1.0
            }
        });
        assert_eq!(next[0], Some(1), "should detour around the heavy edge");
        let cheap = g.weighted_next_hops(2, |_, _| 1.0);
        assert_eq!(cheap[0], Some(2), "direct edge when uniform");
    }

    #[test]
    fn unreachable_nodes_get_none() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        // 2, 3 disconnected (and from each other).
        let next = g.bfs_next_hops(0);
        assert_eq!(next[1], Some(0));
        assert_eq!(next[2], None);
        assert_eq!(next[3], None);
    }

    #[test]
    fn add_edge_idempotent() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.edge_count(), 1);
        assert!(g.are_adjacent(0, 1));
        assert!(g.are_adjacent(1, 0));
    }

    #[test]
    fn ring_with_chords_shape() {
        let g = Graph::ring_with_chords(12, 3);
        assert_eq!(g.len(), 12);
        // Ring edges + chords every 3: 12 + 4 = 16.
        assert_eq!(g.edge_count(), 16);
        assert!(g.are_adjacent(0, 1));
        assert!(g.are_adjacent(0, 3), "chord present");
        assert!(g.are_adjacent(11, 0), "ring wraps");
    }

    #[test]
    fn chords_shorten_paths() {
        let ring = {
            let mut g = Graph::new(12);
            for u in 0..12 {
                g.add_edge(u, (u + 1) % 12);
            }
            g
        };
        let chorded = Graph::ring_with_chords(12, 3);
        let hops = |g: &Graph, from: usize, to: usize| {
            let next = g.bfs_next_hops(to);
            let mut at = from;
            let mut n = 0;
            while at != to {
                at = next[at].expect("connected");
                n += 1;
            }
            n
        };
        assert_eq!(hops(&ring, 0, 6), 6);
        assert!(hops(&chorded, 0, 6) <= 3, "chords halve the diameter");
    }

    #[test]
    fn cpn_routes_on_ring_topology() {
        use crate::routing::RoutingStrategy;
        let g = Graph::ring_with_chords(10, 2);
        let r = RoutingStrategy::cpn_default().build(&g);
        let mut rng = simkernel::SeedTree::new(4).rng("ring");
        let mut at = 0;
        let mut prev = None;
        for _ in 0..10 {
            if at == 5 {
                break;
            }
            let nxt = r.next_hop(&g, at, 5, prev, false, &mut rng).unwrap();
            prev = Some(at);
            at = nxt;
        }
        assert_eq!(at, 5, "greedy CPN init should reach the target");
    }

    #[test]
    fn removed_edges_leave_positions_stable() {
        let mut g = Graph::grid(2, 2); // 0-1, 0-2, 1-3, 2-3
        let before: Vec<usize> = g.neighbours(0).to_vec();
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 3), "never existed");
        assert_eq!(g.neighbours(0), before.as_slice(), "positions stable");
        assert!(!g.are_adjacent(0, 1));
        assert!(!g.edge_up(1, 0), "symmetric");
        assert_eq!(g.edge_count(), 3);
        assert!(g.restore_edge(1, 0), "restore from either end");
        assert!(!g.restore_edge(0, 1), "already up");
        assert!(g.are_adjacent(0, 1));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn double_cut_needs_double_restore() {
        // Two overlapping fault windows cut the same link; the first
        // restore must NOT resurrect the edge while the second fault
        // still holds it down.
        let mut g = Graph::grid(2, 2);
        assert!(g.remove_edge(0, 1), "first cut takes the edge down");
        assert!(!g.remove_edge(0, 1), "second cut: already down");
        assert!(!g.restore_edge(0, 1), "one fault still outstanding");
        assert!(!g.are_adjacent(0, 1), "edge must stay down");
        assert_eq!(g.edge_count(), 3);
        assert!(g.restore_edge(0, 1), "last restore brings it up");
        assert!(g.are_adjacent(0, 1));
        assert_eq!(g.edge_count(), 4);
        assert!(!g.restore_edge(0, 1), "no cuts left");
    }

    #[test]
    fn cut_restore_cycles_are_idempotent() {
        let mut g = Graph::grid(3, 3);
        let pristine = g.clone();
        for depth in 1..=4u32 {
            for _ in 0..depth {
                g.remove_edge(0, 1);
            }
            assert!(!g.edge_up(0, 1));
            for k in 0..depth {
                let came_up = g.restore_edge(0, 1);
                assert_eq!(came_up, k + 1 == depth, "depth {depth} restore {k}");
            }
            assert_eq!(g, pristine, "cycle at depth {depth} must round-trip");
        }
    }

    #[test]
    fn add_edge_clears_all_outstanding_cuts() {
        let mut g = Graph::grid(2, 2);
        g.remove_edge(0, 1);
        g.remove_edge(0, 1);
        g.add_edge(0, 1); // hard re-add: operator replaced the link
        assert!(g.edge_up(0, 1));
        assert!(!g.restore_edge(0, 1), "no stale cuts survive add_edge");
    }

    #[test]
    fn partitioned_graph_routes_around_or_gives_none() {
        // 2×3 grid:
        //   0 1 2
        //   3 4 5
        // Cutting 1-2 and 4-5 splits {0,1,3,4} from {2,5}.
        let mut g = Graph::grid(2, 3);
        assert!(g.remove_edge(1, 2));
        assert!(g.remove_edge(4, 5));
        let next = g.bfs_next_hops(5);
        assert_eq!(next[5], None, "destination itself");
        assert_eq!(next[2], Some(5), "same side still routes");
        for u in [0, 1, 3, 4] {
            assert_eq!(next[u], None, "node {u} is cut off");
        }
        let weighted = g.weighted_next_hops(5, |_, _| 1.0);
        for u in [0, 1, 3, 4] {
            assert_eq!(weighted[u], None, "weighted agrees: {u} cut off");
        }
        // Restoring one crossing reconnects everything.
        assert!(g.restore_edge(4, 5));
        let next = g.bfs_next_hops(5);
        for (u, hop) in next.iter().enumerate().take(5) {
            assert!(hop.is_some(), "node {u} reconnected");
        }
        assert_eq!(next[1], Some(4), "detours around the still-cut 1-2");
    }

    #[test]
    fn bfs_detours_around_cut_bridge() {
        let mut g = Graph::grid(3, 3);
        g.remove_edge(0, 1);
        let next = g.bfs_next_hops(2);
        // 0 can no longer go right; it must drop down to 3.
        assert_eq!(next[0], Some(3));
        // add_edge on a down edge brings it back up.
        g.add_edge(0, 1);
        assert!(g.edge_up(0, 1));
        assert_eq!(g.bfs_next_hops(2)[0], Some(1));
    }

    #[test]
    #[should_panic(expected = "ring needs at least 3 nodes")]
    fn tiny_ring_panics() {
        let _ = Graph::ring_with_chords(2, 2);
    }

    #[test]
    #[should_panic(expected = "no self loops")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }
}
