//! # cpn — a cognitive packet network simulator
//!
//! The paper's resource-constrained self-awareness exemplar (Section
//! III, refs 38, 39): Gelenbe's cognitive packet networks, where "a
//! self-awareness loop provides nodes on a network with the ability to
//! monitor the effect of using different routes. Based on a simple
//! learning scheme, routes between a particular source and destination
//! are adapted on an ongoing basis" — including under denial-of-service
//! load.
//!
//! * [`graph`] — the topology: adjacency, BFS and weighted shortest
//!   paths;
//! * [`routing`] — routers: frozen shortest-path, periodic re-route,
//!   and CPN reinforcement routing with smart (exploring) packets;
//! * [`sim`] — packet-level simulation with per-link queues, drops,
//!   TTLs, attack surges, and the F2 delay series.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::panic)]
#![warn(missing_docs)]

pub mod graph;
pub mod routing;
pub mod sim;

pub use graph::Graph;
pub use routing::RoutingStrategy;
pub use sim::{run_cpn, CpnConfig, CpnResult};
