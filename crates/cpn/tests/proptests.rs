//! Property-based tests for the network simulator's graph and routing
//! invariants.

use cpn::graph::Graph;
use cpn::routing::RoutingStrategy;
use proptest::prelude::*;
use simkernel::SeedTree;

proptest! {
    #[test]
    fn grid_bfs_next_hops_strictly_approach_destination(
        rows in 1usize..6,
        cols in 1usize..6,
        dst_r in 0usize..6,
        dst_c in 0usize..6,
    ) {
        prop_assume!(dst_r < rows && dst_c < cols);
        let g = Graph::grid(rows, cols);
        let dst = dst_r * cols + dst_c;
        let next = g.bfs_next_hops(dst);
        let manhattan = |u: usize| {
            let (r, c) = (u / cols, u % cols);
            r.abs_diff(dst_r) + c.abs_diff(dst_c)
        };
        #[allow(clippy::needless_range_loop)] // u indexes next, dist and g together
        for u in 0..g.len() {
            if u == dst {
                prop_assert!(next[u].is_none());
            } else {
                let v = next[u].expect("grid is connected");
                prop_assert!(g.are_adjacent(u, v));
                prop_assert_eq!(manhattan(v) + 1, manhattan(u), "next hop must reduce distance");
            }
        }
    }

    #[test]
    fn weighted_next_hops_reach_destination(
        rows in 2usize..5,
        cols in 2usize..5,
        seed in any::<u64>(),
    ) {
        use rand::Rng as _;
        let g = Graph::grid(rows, cols);
        let dst = g.len() - 1;
        // Random positive weights.
        let mut rng = SeedTree::new(seed).rng("w");
        let mut weights = std::collections::HashMap::new();
        for u in 0..g.len() {
            for &v in g.neighbours(u) {
                weights.entry((u.min(v), u.max(v))).or_insert_with(|| rng.gen_range(0.5..5.0));
            }
        }
        let next = g.weighted_next_hops(dst, |u, v| weights[&(u.min(v), u.max(v))]);
        // Following next hops from any node terminates at dst without
        // revisiting a node (shortest-path trees are acyclic).
        for start in 0..g.len() {
            let mut at = start;
            let mut visited = std::collections::HashSet::new();
            while at != dst {
                prop_assert!(visited.insert(at), "cycle detected at node {at}");
                at = next[at].expect("connected");
            }
        }
    }

    #[test]
    fn grid_edge_count_formula(rows in 1usize..8, cols in 1usize..8) {
        let g = Graph::grid(rows, cols);
        prop_assert_eq!(g.len(), rows * cols);
        prop_assert_eq!(g.edge_count(), rows * (cols - 1) + cols * (rows - 1));
    }

    #[test]
    fn cpn_router_always_returns_a_neighbour(
        seed in any::<u64>(),
        at in 0usize..12,
        dst in 0usize..12,
        smart in any::<bool>(),
    ) {
        prop_assume!(at != dst);
        let g = Graph::grid(3, 4);
        let router = RoutingStrategy::cpn_default().build(&g);
        let mut rng = SeedTree::new(seed).rng("r");
        let hop = router.next_hop(&g, at, dst, None, smart, &mut rng);
        let v = hop.expect("connected graph must route");
        prop_assert!(g.are_adjacent(at, v));
    }

    #[test]
    fn drop_reinforcement_monotonically_raises_estimates(
        n_drops in 1usize..30,
    ) {
        let g = Graph::grid(2, 3);
        let mut router = RoutingStrategy::Cpn { smart_ratio: 0.0, epsilon: 0.0 }.build(&g);
        let mut last = router.estimate(&g, 0, 1, 5).unwrap();
        for _ in 0..n_drops {
            router.reinforce_drop(&g, 0, 1, 5);
            let now = router.estimate(&g, 0, 1, 5).unwrap();
            prop_assert!(now >= last);
            prop_assert!(now <= cpn::routing::DROP_PENALTY + 1e-9);
            last = now;
        }
    }
}
