//! Property-based tests for the camera network's geometry, learning
//! and diversity metrics.

use camnet::affinity::AffinityTable;
use camnet::camera::Camera;
use camnet::diversity::{entropy, jensen_shannon, policy_divergence};
use camnet::strategy::{nearest_neighbours, random_subsets};
use proptest::prelude::*;
use simkernel::SeedTree;
use workloads::trajectories::Point;

fn distribution(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, n).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        for x in &mut v {
            *x /= s;
        }
        v
    })
}

proptest! {
    #[test]
    fn js_divergence_is_a_bounded_symmetric_premetric(
        p in distribution(5),
        q in distribution(5),
    ) {
        let d = jensen_shannon(&p, &q);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= std::f64::consts::LN_2 + 1e-9);
        prop_assert!((d - jensen_shannon(&q, &p)).abs() < 1e-12);
        prop_assert!(jensen_shannon(&p, &p) < 1e-12);
    }

    #[test]
    fn entropy_bounded_by_log_n(p in distribution(6)) {
        let h = entropy(&p);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (6.0f64).ln() + 1e-9);
    }

    #[test]
    fn divergence_of_identical_policies_is_zero(
        p in distribution(4),
        copies in 2usize..6,
    ) {
        let policies = vec![p; copies];
        prop_assert!(policy_divergence(&policies) < 1e-12);
    }

    #[test]
    fn camera_quality_decreases_with_distance(
        cx in 0.0f64..1.0,
        cy in 0.0f64..1.0,
        r in 0.05f64..0.5,
        d1 in 0.0f64..1.0,
        d2 in 0.0f64..1.0,
    ) {
        let cam = Camera::new(0, Point::new(cx, cy), r, 2);
        let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let p_near = Point::new(cx + near * r, cy);
        let p_far = Point::new(cx + far * r, cy);
        prop_assert!(cam.quality(p_near) >= cam.quality(p_far) - 1e-12);
        prop_assert!((0.0..=1.0).contains(&cam.quality(p_near)));
        // sees() is consistent with quality > 0 (boundary has quality 0).
        if cam.quality(p_near) > 0.0 {
            prop_assert!(cam.sees(p_near));
        }
    }

    #[test]
    fn affinity_always_in_unit_interval(
        outcomes in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut table = AffinityTable::new(3);
        for &won in &outcomes {
            table.record_auction(0, 1, won);
            let a = table.affinity(0, 1);
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn ask_distribution_is_a_distribution(
        invites in proptest::collection::vec((1usize..4, any::<bool>()), 0..100),
    ) {
        let mut table = AffinityTable::new(4);
        for &(peer, won) in &invites {
            table.record_auction(0, peer, won);
        }
        let d = table.ask_distribution(0);
        prop_assert_eq!(d.len(), 4);
        prop_assert_eq!(d[0], 0.0);
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn nearest_neighbours_are_sound(side in 2usize..5, k in 1usize..6) {
        let n = side * side;
        let cams: Vec<Camera> = (0..n)
            .map(|i| {
                let x = (i % side) as f64 / side as f64;
                let y = (i / side) as f64 / side as f64;
                Camera::new(i, Point::new(x, y), 0.3, n)
            })
            .collect();
        let nn = nearest_neighbours(&cams, k);
        for (me, list) in nn.iter().enumerate() {
            prop_assert_eq!(list.len(), k.min(n - 1));
            prop_assert!(!list.contains(&me));
            // Every excluded camera is at least as far as the farthest
            // included one.
            if let Some(&farthest) = list.last() {
                let dmax = cams[me].position().distance(cams[farthest].position());
                for other in 0..n {
                    if other != me && !list.contains(&other) {
                        let d = cams[me].position().distance(cams[other].position());
                        prop_assert!(d >= dmax - 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn random_subsets_valid(n in 2usize..20, k in 1usize..6, seed in any::<u64>()) {
        let mut rng = SeedTree::new(seed).rng("s");
        let sets = random_subsets(n, k, &mut rng);
        prop_assert_eq!(sets.len(), n);
        for (me, s) in sets.iter().enumerate() {
            prop_assert_eq!(s.len(), k.min(n - 1));
            prop_assert!(!s.contains(&me));
            let mut uniq = s.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), s.len());
        }
    }
}
