//! Dense-vs-sparse equivalence for the F12 camera world.
//!
//! Random F5/F9-style fault campaigns must produce **bit-identical**
//! metric aggregates whether the world is driven by the legacy dense
//! loop or by sparse activation on the scheduler, and whether the
//! replicate fan-out runs on 1 worker or 4 — the workspace's
//! seq-vs-parallel contract extended to the DES core.

use camnet::des::{run_des_camnet, DesCamnetConfig};
use proptest::prelude::*;
use simkernel::{DriveMode, Replications, Tick};
use workloads::faults::{FaultEvent, FaultPlan};

/// A random camera-fault campaign: fail/recover pairs across the
/// grid, F9-cascade style (overlapping windows allowed).
fn campaign(n_cameras: usize, steps: u64) -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec((0..n_cameras, 1..steps.max(2), 1..steps.max(2)), 0..6).prop_map(
        move |faults| {
            let mut plan = FaultPlan::none();
            for (cam, a, b) in faults {
                let (fail, recover) = if a <= b { (a, b) } else { (b, a) };
                plan = plan
                    .and(FaultEvent::camera_fail(Tick(fail), cam))
                    .and(FaultEvent::camera_recover(Tick(recover), cam));
            }
            plan
        },
    )
}

fn cfg_with(
    side: usize,
    objects: usize,
    steps: u64,
    home_bias: bool,
    faults: FaultPlan,
    drive: DriveMode,
) -> DesCamnetConfig {
    let mut cfg = DesCamnetConfig::at_scale(side, objects, steps);
    cfg.home_bias = home_bias;
    cfg.faults = faults;
    cfg.drive = drive;
    cfg
}

proptest! {

    // Single-replicate bit-identity over random campaigns.
    #[test]
    fn random_campaigns_match_dense_bit_for_bit(
        seed in 0u64..1000,
        side in 4usize..9,
        objects in 0usize..16,
        home_bias in any::<bool>(),
        faults in campaign(80, 250),
    ) {
        let steps = 250;
        let dense = run_des_camnet(
            &cfg_with(side, objects, steps, home_bias, faults.clone(), DriveMode::Dense),
            &simkernel::SeedTree::new(seed),
        );
        let sparse = run_des_camnet(
            &cfg_with(side, objects, steps, home_bias, faults, DriveMode::Sparse),
            &simkernel::SeedTree::new(seed),
        );
        prop_assert_eq!(dense.metrics, sparse.metrics);
    }

    // Replicate fan-out at 1 and 4 workers agrees across drive
    // modes: all four (mode × thread-count) runs produce the same
    // aggregate report.
    #[test]
    fn aggregates_are_thread_and_mode_invariant(
        base_seed in 0u64..500,
        faults in campaign(36, 180),
    ) {
        let runs = Replications::new(base_seed, 4);
        let report = |drive: DriveMode, threads: usize| {
            let faults = faults.clone();
            runs.run_par_threads(threads, move |seeds| {
                run_des_camnet(
                    &cfg_with(6, 8, 180, false, faults.clone(), drive),
                    &seeds,
                )
                .metrics
            })
        };
        let d1 = report(DriveMode::Dense, 1);
        let d4 = report(DriveMode::Dense, 4);
        let s1 = report(DriveMode::Sparse, 1);
        let s4 = report(DriveMode::Sparse, 4);
        prop_assert_eq!(&d1, &d4);
        prop_assert_eq!(&s1, &s4);
        prop_assert_eq!(&d1, &s1);
    }
}
