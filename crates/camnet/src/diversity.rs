//! Heterogeneity metrics: how *different* have the cameras become?
//!
//! Lewis et al. \[12, 13\] quantify emergent behavioural heterogeneity
//! by comparing the learned policies of the network's entities. Here a
//! camera's policy is its ask-preference distribution
//! ([`crate::camera::Camera::preference`]); network heterogeneity is
//! the mean pairwise Jensen–Shannon divergence between those
//! distributions. Homogeneous networks (everyone broadcasts, or
//! everyone uses the same prior) score 0; networks whose members have
//! specialised score high.

/// Jensen–Shannon divergence between two discrete distributions, in
/// nats. Symmetric, bounded by `ln 2`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn jensen_shannon(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution dimension mismatch");
    fn kl_term(x: f64, m: f64) -> f64 {
        if x <= 0.0 || m <= 0.0 {
            0.0
        } else {
            x * (x / m).ln()
        }
    }
    let mut js = 0.0;
    for (&a, &b) in p.iter().zip(q) {
        let m = 0.5 * (a + b);
        js += 0.5 * kl_term(a, m) + 0.5 * kl_term(b, m);
    }
    js.max(0.0)
}

/// Mean pairwise Jensen–Shannon divergence across a set of policy
/// distributions — the network heterogeneity score used in F1.
///
/// Returns 0 for fewer than two policies.
#[must_use]
pub fn policy_divergence(policies: &[Vec<f64>]) -> f64 {
    let n = policies.len();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut pairs = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += jensen_shannon(&policies[i], &policies[j]);
            pairs += 1;
        }
    }
    sum / pairs as f64
}

/// Shannon entropy of a distribution, in nats. Used as a per-camera
/// specialisation measure (low entropy = focused ask-set).
#[must_use]
pub fn entropy(p: &[f64]) -> f64 {
    -p.iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| x * x.ln())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn js_identical_is_zero() {
        let p = vec![0.25, 0.25, 0.5];
        assert!(jensen_shannon(&p, &p) < 1e-12);
    }

    #[test]
    fn js_disjoint_is_ln2() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert!((jensen_shannon(&p, &q) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn js_is_symmetric() {
        let p = vec![0.7, 0.2, 0.1];
        let q = vec![0.1, 0.3, 0.6];
        assert!((jensen_shannon(&p, &q) - jensen_shannon(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn divergence_zero_for_homogeneous() {
        let same = vec![vec![0.5, 0.5]; 6];
        assert!(policy_divergence(&same) < 1e-12);
    }

    #[test]
    fn divergence_positive_for_specialised() {
        let policies = vec![
            vec![0.9, 0.05, 0.05],
            vec![0.05, 0.9, 0.05],
            vec![0.05, 0.05, 0.9],
        ];
        assert!(policy_divergence(&policies) > 0.3);
    }

    #[test]
    fn divergence_degenerate_inputs() {
        assert_eq!(policy_divergence(&[]), 0.0);
        assert_eq!(policy_divergence(&[vec![1.0]]), 0.0);
    }

    #[test]
    fn entropy_extremes() {
        assert!(entropy(&[1.0, 0.0]) < 1e-12);
        let uniform = vec![0.25; 4];
        assert!((entropy(&uniform) - (4.0_f64).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "distribution dimension mismatch")]
    fn js_dim_mismatch_panics() {
        let _ = jensen_shannon(&[1.0], &[0.5, 0.5]);
    }
}
