//! Handover strategies: whom does a camera invite to the auction when
//! an object is slipping out of view?
//!
//! Following Esterle/Lewis (refs 11, 13), the spectrum runs from
//! maximum-communication [`HandoverStrategy::Broadcast`] to learned,
//! per-camera ask-sets ([`HandoverStrategy::SelfAware`]) — the latter
//! being where heterogeneity *emerges* (each camera's learned ask-set
//! reflects its own position and the objects it actually sees).

use crate::camera::Camera;
use rand::Rng as _;
use simkernel::rng::Rng;

/// Auction-invitation strategy, shared by all cameras in a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HandoverStrategy {
    /// Invite every other camera.
    Broadcast,
    /// Invite the `k` spatially nearest cameras (fixed at deploy time
    /// from camera positions).
    Smooth {
        /// Number of nearest neighbours invited.
        k: usize,
    },
    /// Invite a fixed random subset of `k` cameras chosen once per
    /// camera at deploy time.
    Static {
        /// Subset size.
        k: usize,
    },
    /// Self-aware: invite cameras whose learned affinity exceeds a
    /// threshold, plus ε-exploration so dormant neighbours are
    /// retried. Each camera's ask-set is its own.
    SelfAware {
        /// Affinity threshold above which a peer is always invited.
        threshold: f64,
        /// Per-peer exploration probability.
        epsilon: f64,
    },
}

impl HandoverStrategy {
    /// Canonical configuration used by T3/F1.
    #[must_use]
    pub fn self_aware_default() -> Self {
        HandoverStrategy::SelfAware {
            threshold: 0.25,
            epsilon: 0.05,
        }
    }

    /// Short table label.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            HandoverStrategy::Broadcast => "broadcast".into(),
            HandoverStrategy::Smooth { k } => format!("smooth(k={k})"),
            HandoverStrategy::Static { k } => format!("static(k={k})"),
            HandoverStrategy::SelfAware { .. } => "self-aware".into(),
        }
    }

    /// Computes the invite list for an auction run by camera `me` in
    /// an `n_cameras` network, appending into `out` (cleared first) so
    /// the auction hot loop can reuse one buffer across auctions.
    ///
    /// `affinity` maps a peer index to the affinity score the
    /// selection should see — usually a direct
    /// [`crate::affinity::AffinityTable`] read, or a staleness-blended
    /// view of it under a lossy channel. Only
    /// [`HandoverStrategy::SelfAware`] consults it, in ascending peer
    /// order with short-circuit ε-exploration, so the RNG draw
    /// sequence is a pure function of the scores the closure returns.
    ///
    /// `static_sets` are the per-camera deploy-time subsets used by
    /// [`HandoverStrategy::Static`]; `neighbours` are per-camera
    /// nearest-neighbour lists used by [`HandoverStrategy::Smooth`].
    // Hot-path entry point: the arguments are the full decision
    // context (topology tables, score view, RNG, reuse buffer) and
    // bundling them into a struct would just move the same list one
    // call up.
    #[allow(clippy::too_many_arguments)]
    pub fn invitees_into(
        &self,
        me: usize,
        n_cameras: usize,
        affinity: impl Fn(usize) -> f64,
        neighbours: &[Vec<usize>],
        static_sets: &[Vec<usize>],
        rng: &mut Rng,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        match *self {
            HandoverStrategy::Broadcast => out.extend((0..n_cameras).filter(|&j| j != me)),
            HandoverStrategy::Smooth { .. } => out.extend_from_slice(&neighbours[me]),
            HandoverStrategy::Static { .. } => out.extend_from_slice(&static_sets[me]),
            HandoverStrategy::SelfAware { threshold, epsilon } => {
                out.extend((0..n_cameras).filter(|&j| {
                    j != me && (affinity(j) >= threshold || rng.gen::<f64>() < epsilon)
                }));
            }
        }
    }

    /// Allocating convenience wrapper around
    /// [`HandoverStrategy::invitees_into`].
    pub fn invitees(
        &self,
        me: usize,
        n_cameras: usize,
        affinity: impl Fn(usize) -> f64,
        neighbours: &[Vec<usize>],
        static_sets: &[Vec<usize>],
        rng: &mut Rng,
    ) -> Vec<usize> {
        let mut out = Vec::new();
        self.invitees_into(
            me,
            n_cameras,
            affinity,
            neighbours,
            static_sets,
            rng,
            &mut out,
        );
        out
    }
}

/// Precomputes each camera's `k` nearest neighbours.
#[must_use]
pub fn nearest_neighbours(cameras: &[Camera], k: usize) -> Vec<Vec<usize>> {
    cameras
        .iter()
        .map(|c| {
            let mut others: Vec<usize> = (0..cameras.len()).filter(|&j| j != c.id()).collect();
            others.sort_by(|&a, &b| {
                let da = c.position().distance(cameras[a].position());
                let db = c.position().distance(cameras[b].position());
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            });
            others.truncate(k);
            others
        })
        .collect()
}

/// Draws each camera's deploy-time random subset of size `k`.
#[must_use]
pub fn random_subsets(n: usize, k: usize, rng: &mut Rng) -> Vec<Vec<usize>> {
    use rand::seq::SliceRandom as _;
    (0..n)
        .map(|me| {
            let mut others: Vec<usize> = (0..n).filter(|&j| j != me).collect();
            others.shuffle(rng);
            others.truncate(k);
            others
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::AffinityTable;
    use workloads::trajectories::Point;

    fn grid(n_side: usize) -> Vec<Camera> {
        let n = n_side * n_side;
        let mut v = Vec::new();
        for i in 0..n {
            let x = (i % n_side) as f64 / n_side as f64 + 0.5 / n_side as f64;
            let y = (i / n_side) as f64 / n_side as f64 + 0.5 / n_side as f64;
            v.push(Camera::new(i, Point::new(x, y), 0.3, n));
        }
        v
    }

    fn rng() -> Rng {
        simkernel::SeedTree::new(2).rng("strat")
    }

    #[test]
    fn broadcast_invites_everyone_else() {
        let t = AffinityTable::new(9);
        let mut r = rng();
        let inv =
            HandoverStrategy::Broadcast.invitees(4, 9, |j| t.affinity(4, j), &[], &[], &mut r);
        assert_eq!(inv.len(), 8);
        assert!(!inv.contains(&4));
    }

    #[test]
    fn smooth_uses_nearest() {
        let cams = grid(3);
        let nn = nearest_neighbours(&cams, 3);
        let mut r = rng();
        let inv = HandoverStrategy::Smooth { k: 3 }.invitees(0, 9, |_| 0.5, &nn, &[], &mut r);
        assert_eq!(inv.len(), 3);
        // Corner camera 0's nearest are 1 (right), 3 (below), 4 (diag).
        assert!(inv.contains(&1) && inv.contains(&3));
    }

    #[test]
    fn static_sets_are_fixed_and_sized() {
        let mut r = rng();
        let sets = random_subsets(9, 3, &mut r);
        assert_eq!(sets.len(), 9);
        for (me, s) in sets.iter().enumerate() {
            assert_eq!(s.len(), 3);
            assert!(!s.contains(&me));
        }
        let inv = HandoverStrategy::Static { k: 3 }.invitees(2, 9, |_| 0.5, &[], &sets, &mut r);
        assert_eq!(inv, sets[2]);
    }

    #[test]
    fn self_aware_filters_by_affinity() {
        let mut t = AffinityTable::new(9);
        // Camera 0 learns camera 1 always wins, others never do.
        for _ in 0..60 {
            t.record_auction(0, 1, true);
            for j in 2..9 {
                t.record_auction(0, j, false);
            }
        }
        let strat = HandoverStrategy::SelfAware {
            threshold: 0.3,
            epsilon: 0.0,
        };
        let mut r = rng();
        let inv = strat.invitees(0, 9, |j| t.affinity(0, j), &[], &[], &mut r);
        assert_eq!(inv, vec![1]);
    }

    #[test]
    fn self_aware_epsilon_explores() {
        let strat = HandoverStrategy::SelfAware {
            threshold: 2.0, // nothing passes threshold
            epsilon: 1.0,   // but everything explored
        };
        let mut r = rng();
        let inv = strat.invitees(0, 9, |_| 0.5, &[], &[], &mut r);
        assert_eq!(inv.len(), 8);
    }

    #[test]
    fn invitees_into_reuses_the_buffer() {
        let mut r = rng();
        let mut buf = vec![99usize; 4];
        HandoverStrategy::Broadcast.invitees_into(1, 4, |_| 0.5, &[], &[], &mut r, &mut buf);
        assert_eq!(buf, vec![0, 2, 3], "buffer cleared before reuse");
        HandoverStrategy::Broadcast.invitees_into(0, 3, |_| 0.5, &[], &[], &mut r, &mut buf);
        assert_eq!(buf, vec![1, 2]);
    }

    #[test]
    fn labels() {
        assert_eq!(HandoverStrategy::Broadcast.label(), "broadcast");
        assert_eq!(HandoverStrategy::Smooth { k: 2 }.label(), "smooth(k=2)");
        assert_eq!(HandoverStrategy::self_aware_default().label(), "self-aware");
    }
}
