//! The camera-network world: objects, ownership, auctions, metrics.

use crate::affinity::AffinityTable;
use crate::camera::Camera;
use crate::diversity::policy_divergence;
use crate::strategy::{nearest_neighbours, random_subsets, HandoverStrategy};
use rand::Rng as _;
use selfaware::comms::{CommsNetwork, CommsPolicy};
use selfaware::explain::ExplanationLog;
use selfaware::goals::{Direction, Goal, Objective};
use selfaware::replay::InterventionMask;
use selfaware::supervision::{ControlSource, Evidence, Supervisor, Verdict};
use simkernel::obs;
use simkernel::rng::SeedTree;
use simkernel::{MetricSet, Tick, TimeSeries};
use workloads::faults::{ChannelPlan, FaultKind, FaultPlan, ModelCorruptionKind};
use workloads::trajectories::{Point, Wanderer};

/// Configuration of a camera-network scenario.
#[derive(Debug, Clone)]
pub struct CamnetConfig {
    /// Cameras are placed on a `side × side` grid.
    pub side: usize,
    /// Field-of-view radius (unit-square distance).
    pub fov_radius: f64,
    /// Number of wandering objects.
    pub objects: usize,
    /// Object speed per tick.
    pub speed: f64,
    /// Simulation length.
    pub steps: u64,
    /// Tracking quality below which the owner auctions the object.
    pub handover_threshold: f64,
    /// Probability per tick that an untracked object is re-acquired
    /// by a camera that sees it.
    pub redetect_prob: f64,
    /// If true, each object is biased to a "home" region of the scene
    /// (spatially heterogeneous demand — the condition under which
    /// per-camera specialisation pays off most, per ref \[13\]).
    pub home_bias: bool,
    /// Scheduled camera faults (`CameraFail` / `CameraRecover` /
    /// `ModelCorruption`; other kinds are ignored by this simulator).
    /// A dead camera drops every object it owns, never bids, and
    /// cannot redetect; auction asks still cost messages because the
    /// asker cannot know who is dead — learned strategies discover it
    /// through lost auctions. `ModelCorruption` attacks the learned
    /// affinity matrix itself.
    pub faults: FaultPlan,
    /// Handover strategy used by every camera.
    pub strategy: HandoverStrategy,
    /// If true, a meta-level [`Supervisor`] watchdogs the learned
    /// affinity matrix: checkpoints it, rolls it back when corrupted,
    /// and benches the network onto broadcast invitations while the
    /// model is untrusted.
    pub supervise: bool,
    /// The medium auction asks, bids and transfer messages traverse.
    /// Defaults to [`ChannelPlan::ideal`], which reproduces the
    /// historical perfect-network behaviour bit for bit.
    pub channel: ChannelPlan,
    /// How the cameras cope with an unreliable channel: naive
    /// fire-and-forget (the ablation), or the staleness-aware
    /// protocol that refuses to unlearn unreachable peers and aborts
    /// undeliverable handovers.
    pub comms: CommsPolicy,
    /// Counterfactual-replay intervention mask (see
    /// [`selfaware::replay`]), applied to the affinity supervisor and
    /// the comms layer. Factual (everything allowed) by default.
    pub mask: InterventionMask,
}

impl CamnetConfig {
    /// Standard T3/F1 scenario: 4×4 grid, 6 objects.
    #[must_use]
    pub fn standard(strategy: HandoverStrategy, steps: u64) -> Self {
        Self {
            side: 4,
            fov_radius: 0.32,
            objects: 6,
            speed: 0.02,
            steps,
            handover_threshold: 0.18,
            redetect_prob: 0.3,
            home_bias: false,
            faults: FaultPlan::none(),
            strategy,
            supervise: false,
            channel: ChannelPlan::ideal(),
            comms: CommsPolicy::default(),
            mask: InterventionMask::allow_all(),
        }
    }
}

/// Outputs of a camera-network run.
#[derive(Debug, Clone)]
pub struct CamnetResult {
    /// Scalar metrics (see [`run_camnet`] for keys).
    pub metrics: MetricSet,
    /// Network heterogeneity (mean pairwise policy JS divergence)
    /// sampled every 50 ticks — the F1 series.
    pub heterogeneity: TimeSeries,
    /// Mean tracking quality per object, sampled every 50 ticks.
    pub quality: TimeSeries,
    /// Comms-layer events: partitions, heals, failed exchanges.
    pub comms_log: ExplanationLog,
}

/// The composite goal: track well, talk little.
#[must_use]
pub fn camnet_goal() -> Goal {
    Goal::new("track-cheaply")
        .objective(Objective::new(
            "track_quality",
            Direction::Maximize,
            0.8,
            2.0,
        ))
        .objective(Objective::new("ask_ratio", Direction::Minimize, 1.0, 1.0))
}

/// Runs a scenario. Metric keys:
///
/// * `track_quality` — mean per-object-tick tracking quality in `[0,1]`;
/// * `untracked_ratio` — fraction of object-ticks with no owner;
/// * `messages_per_tick` — auction messages per tick;
/// * `ask_ratio` — mean fraction of the network invited per auction;
/// * `auctions` — handover auctions run;
/// * `handovers` — ownership transfers that occurred;
/// * `heterogeneity_final` — policy divergence at the end of the run;
/// * `utility` — [`camnet_goal`] composite.
#[must_use]
pub fn run_camnet(cfg: &CamnetConfig, seeds: &SeedTree) -> CamnetResult {
    let n = cfg.side * cfg.side;
    assert!(n >= 2, "need at least two cameras");
    let cameras: Vec<Camera> = (0..n)
        .map(|i| {
            let x = (i % cfg.side) as f64 / cfg.side as f64 + 0.5 / cfg.side as f64;
            let y = (i / cfg.side) as f64 / cfg.side as f64 + 0.5 / cfg.side as f64;
            Camera::new(i, Point::new(x, y), cfg.fov_radius, n)
        })
        .collect();
    let neighbours = nearest_neighbours(&cameras, 3);
    let mut setup_rng = seeds.rng("static-sets");
    let static_sets = random_subsets(n, 3, &mut setup_rng);

    let mut obj_rng = seeds.rng("objects");
    let mut objects: Vec<Wanderer> = (0..cfg.objects)
        .map(|i| {
            let w = Wanderer::new(cfg.speed, &mut obj_rng);
            if cfg.home_bias {
                // Spread homes across scene corners so demand is
                // spatially uneven but covers the network.
                let corner = i % 4;
                let home = Point::new(
                    if corner % 2 == 0 { 0.25 } else { 0.75 },
                    if corner / 2 == 0 { 0.25 } else { 0.75 },
                );
                w.with_home(home, 0.2)
            } else {
                w
            }
        })
        .collect();
    let mut alive = vec![true; n];
    // The network's learned state, struct-of-arrays: one contiguous
    // affinity/invite slab instead of per-camera heap rows (see
    // `crate::affinity`). The auction hot loop reads and updates it
    // without allocating.
    let mut table = AffinityTable::new(n);
    // Initial ownership: best-quality seer, if any.
    let mut owner: Vec<Option<usize>> = objects
        .iter()
        .map(|o| best_seer(&cameras, &alive, o.position()))
        .collect();

    // Meta-self-awareness: the supervised model is the network-wide
    // affinity matrix (flat row-major). The supervisor checkpoints
    // it, watches a tracking-loss error signal, and benches the
    // network onto broadcast invitations while the model is corrupt.
    struct AffinitySupervision {
        sup: Supervisor<Vec<f64>>,
        log: ExplanationLog,
    }
    let mut supervision = cfg.supervise.then(|| {
        Box::new(AffinitySupervision {
            sup: Supervisor::new("camera-affinities", table.snapshot()).with_mask(cfg.mask),
            log: ExplanationLog::new(512),
        })
    });
    let mut frozen_until: Option<Tick> = None;

    // The comms layer carries every auction ask/bid round trip and
    // every transfer message. It consumes no randomness: frame fates
    // are a pure function of the channel plan, so the ideal default
    // leaves every exchange — and every downstream number — exactly
    // as the perfect-network code produced it.
    let mut comms: CommsNetwork<()> = CommsNetwork::new(cfg.comms).with_mask(cfg.mask);
    let mut comms_log = ExplanationLog::new(2048);
    let ideal = cfg.channel.is_ideal();
    let aware = !cfg.comms.is_naive();

    let mut auction_rng = seeds.rng("auctions");
    let mut quality_sum = 0.0;
    let mut untracked_ticks = 0u64;
    let mut messages = 0u64;
    let mut auctions = 0u64;
    let mut handovers = 0u64;
    let mut invited_total = 0u64;
    let mut heterogeneity = TimeSeries::new(cfg.strategy.label());
    let mut quality_series = TimeSeries::new(cfg.strategy.label());
    let mut window_quality = 0.0;
    let mut window_samples = 0u64;
    // Auction scratch buffers, reused across every auction in the run
    // so the hot loop performs no per-auction allocation.
    let mut invitees: Vec<usize> = Vec::with_capacity(n);
    let mut reachable: Vec<bool> = Vec::with_capacity(n);

    for t in 0..cfg.steps {
        let now = Tick(t);

        // Phase spans (sense → act → decide) are profiling only: they
        // read the wall clock and write into the thread-local obs
        // sink, never into simulation state (see `simkernel::obs`).
        let sense_span = obs::span("camnet:sense");

        // Apply scheduled camera faults before anything tracks.
        for ev in cfg.faults.events_at(now) {
            match ev.kind {
                FaultKind::CameraFail { camera } if camera < n => {
                    alive[camera] = false;
                    // A dying camera loses every object it tracked.
                    for o in &mut owner {
                        if *o == Some(camera) {
                            *o = None;
                        }
                    }
                }
                FaultKind::CameraRecover { camera } if camera < n => {
                    alive[camera] = true;
                }
                FaultKind::ModelCorruption { kind, .. } => match kind {
                    ModelCorruptionKind::NanPoison => {
                        table.fill(f64::NAN);
                    }
                    ModelCorruptionKind::WeightScramble { gain } => {
                        // Push every learned score far below any
                        // invitation threshold: the network forgets
                        // who its useful neighbours are.
                        table.map_in_place(|a| (a - 1.0) * gain);
                    }
                    ModelCorruptionKind::StateFreeze { duration } => {
                        frozen_until = Some(Tick(t + duration));
                    }
                },
                _ => {}
            }
        }
        let frozen = frozen_until.is_some_and(|until| now < until);
        let benched = supervision
            .as_ref()
            .is_some_and(|s| s.sup.source() == ControlSource::Baseline);

        for o in &mut objects {
            o.step(&mut obj_rng);
        }
        drop(sense_span);
        let act_span = obs::span("camnet:act");
        let mut tick_untracked = 0u64;
        for (oi, obj) in objects.iter().enumerate() {
            let pos = obj.position();
            match owner[oi] {
                Some(me) => {
                    let q = cameras[me].quality(pos);
                    quality_sum += q;
                    window_quality += q;
                    window_samples += 1;
                    if q < cfg.handover_threshold {
                        // Run the handover auction. While the learned
                        // model is benched, fall back to broadcast —
                        // expensive but trustworthy.
                        auctions += 1;
                        let strategy = if benched {
                            HandoverStrategy::Broadcast
                        } else {
                            cfg.strategy
                        };
                        // Staleness-aware invitee selection under a
                        // lossy channel: learned affinity toward a
                        // peer the camera has not heard from decays
                        // toward the 0.5 prior, so silent peers are
                        // neither trusted nor written off. On an
                        // ideal channel every peer is perfectly fresh
                        // (weight 1), so the blend is skipped and the
                        // selection is exactly the historical one.
                        // Either way the blend is a read-only view —
                        // no row is cloned or written back.
                        if ideal || !aware {
                            strategy.invitees_into(
                                me,
                                n,
                                |j| table.affinity(me, j),
                                &neighbours,
                                &static_sets,
                                &mut auction_rng,
                                &mut invitees,
                            );
                        } else {
                            strategy.invitees_into(
                                me,
                                n,
                                |j| {
                                    let w = comms.freshness(me, j, now);
                                    w * table.affinity(me, j) + (1.0 - w) * 0.5
                                },
                                &neighbours,
                                &static_sets,
                                &mut auction_rng,
                                &mut invitees,
                            );
                        }
                        invited_total += invitees.len() as u64;
                        // ask + bid messages
                        messages += 2 * invitees.len() as u64;
                        // Each ask/bid is a same-tick round trip on
                        // the channel: a lost or delayed leg means no
                        // bid from that peer this auction. Dead
                        // invitees are silent at the application
                        // layer even when the channel is fine — the
                        // ask was still sent (and counted), and
                        // `record_auction` below treats their silence
                        // as a lost auction, decaying learned
                        // affinity toward them.
                        reachable.clear();
                        reachable.extend(invitees.iter().map(|&j| {
                            comms.probe_roundtrip(&cfg.channel, me, j, now, &mut comms_log)
                        }));
                        let winner = invitees
                            .iter()
                            .copied()
                            .zip(reachable.iter().copied())
                            .filter(|&(j, r)| r && alive[j])
                            .map(|(j, _)| (j, cameras[j].quality(pos)))
                            .filter(|&(_, bid)| bid > q)
                            .max_by(|a, b| {
                                a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal)
                            });
                        if !frozen {
                            for (&j, &r) in invitees.iter().zip(&reachable) {
                                // Staleness-aware cameras refuse to
                                // unlearn a peer the *channel* failed
                                // to reach — "couldn't hear you" is
                                // not "you lost". The naive ablation
                                // cannot tell the two apart and
                                // decays affinity either way.
                                if r || !aware {
                                    let won = winner.is_some_and(|(w, _)| w == j);
                                    table.record_auction(me, j, won);
                                }
                            }
                        }
                        match winner {
                            Some((w, _)) => {
                                messages += 1; // transfer message
                                if comms.fire_once(&cfg.channel, me, w, now, &mut comms_log) {
                                    handovers += 1;
                                    owner[oi] = Some(w);
                                } else if !aware {
                                    // Fire-and-forget hands the object
                                    // into the void: the sender stops
                                    // tracking, the receiver never
                                    // started.
                                    owner[oi] = None;
                                }
                                // Aware mode aborts the handover: the
                                // current owner keeps (poorly)
                                // tracking and the auction reruns
                                // while quality stays low.
                            }
                            None if q <= 0.0 => owner[oi] = None,
                            None => {}
                        }
                    }
                }
                None => {
                    untracked_ticks += 1;
                    tick_untracked += 1;
                    window_samples += 1;
                    if auction_rng.gen::<f64>() < cfg.redetect_prob {
                        owner[oi] = best_seer(&cameras, &alive, pos);
                    }
                }
            }
        }

        drop(act_span);
        let _decide_span = obs::span("camnet:decide");

        // Score the affinity model: its "output" is the mean learned
        // score (NaN poison surfaces here immediately), its error the
        // fraction of objects left untracked this tick (a corrupted
        // ask-policy loses objects). The strictly advancing input
        // lets the stall detector catch frozen state.
        if let Some(s) = &mut supervision {
            let mean_affinity = table.mean();
            let error = tick_untracked as f64 / cfg.objects.max(1) as f64;
            s.sup.set_model(table.snapshot());
            let verdict = s.sup.observe(
                now,
                Evidence::scored(mean_affinity, error).with_input(t as f64),
                &mut s.log,
            );
            if matches!(verdict, Verdict::RolledBack(_) | Verdict::FellBack(_)) {
                table.restore(s.sup.model());
            }
        }

        if t % 50 == 0 {
            let policies: Vec<Vec<f64>> = (0..n).map(|i| table.ask_distribution(i)).collect();
            heterogeneity.push(now, policy_divergence(&policies));
            if window_samples > 0 {
                quality_series.push(now, window_quality / window_samples as f64);
            }
            window_quality = 0.0;
            window_samples = 0;
        }
    }

    let object_ticks = (cfg.steps * cfg.objects as u64).max(1) as f64;
    let mut metrics = MetricSet::new();
    metrics.set("track_quality", quality_sum / object_ticks);
    metrics.set("untracked_ratio", untracked_ticks as f64 / object_ticks);
    metrics.set(
        "messages_per_tick",
        messages as f64 / cfg.steps.max(1) as f64,
    );
    metrics.set(
        "ask_ratio",
        if auctions > 0 {
            invited_total as f64 / (auctions as f64 * (n - 1) as f64)
        } else {
            0.0
        },
    );
    metrics.set("auctions", auctions as f64);
    metrics.set("handovers", handovers as f64);
    let policies: Vec<Vec<f64>> = (0..n).map(|i| table.ask_distribution(i)).collect();
    metrics.set("heterogeneity_final", policy_divergence(&policies));
    let utility = camnet_goal().utility(|k| metrics.get(k));
    metrics.set("utility", utility);
    let sup = supervision
        .as_ref()
        .map(|s| s.sup.stats())
        .unwrap_or_default();
    metrics.set("model_rollbacks", f64::from(sup.rollbacks));
    metrics.set("model_fallbacks", f64::from(sup.fallbacks));
    metrics.set("model_repromotions", f64::from(sup.repromotions));
    let cs = comms.stats();
    metrics.set("comms_sent", cs.sent as f64);
    metrics.set("comms_retries", cs.retries as f64);
    metrics.set("comms_expired", cs.expired as f64);
    metrics.set("comms_partition_hits", cs.partition_hits as f64);
    metrics.set("comms_exchange_failures", cs.exchange_failures as f64);

    CamnetResult {
        metrics,
        heterogeneity,
        quality: quality_series,
        comms_log,
    }
}

fn best_seer(cameras: &[Camera], alive: &[bool], pos: Point) -> Option<usize> {
    cameras
        .iter()
        .filter(|c| alive[c.id()] && c.sees(pos))
        .max_by(|a, b| {
            a.quality(pos)
                .partial_cmp(&b.quality(pos))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(Camera::id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(strategy: HandoverStrategy, seed: u64, steps: u64) -> CamnetResult {
        run_camnet(
            &CamnetConfig::standard(strategy, steps),
            &SeedTree::new(seed),
        )
    }

    #[test]
    fn broadcast_tracks_well() {
        let r = run(HandoverStrategy::Broadcast, 1, 3000);
        let q = r.metrics.get("track_quality").unwrap();
        assert!(q > 0.5, "broadcast quality {q}");
        assert!(r.metrics.get("untracked_ratio").unwrap() < 0.1);
        assert!((r.metrics.get("ask_ratio").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn self_aware_cuts_communication_keeps_quality() {
        let mut ok = 0;
        for seed in 0..3 {
            let bc = run(HandoverStrategy::Broadcast, seed, 4000);
            let sa = run(HandoverStrategy::self_aware_default(), seed, 4000);
            let q_bc = bc.metrics.get("track_quality").unwrap();
            let q_sa = sa.metrics.get("track_quality").unwrap();
            let m_bc = bc.metrics.get("messages_per_tick").unwrap();
            let m_sa = sa.metrics.get("messages_per_tick").unwrap();
            if q_sa > 0.8 * q_bc && m_sa < 0.8 * m_bc {
                ok += 1;
            }
        }
        assert!(
            ok >= 2,
            "self-aware matched broadcast cheaply on {ok}/3 seeds"
        );
    }

    #[test]
    fn self_aware_heterogeneity_grows() {
        let r = run(HandoverStrategy::self_aware_default(), 5, 4000);
        let series = r.heterogeneity.points();
        let early = series[1].1; // skip t=0 (prior; divergence 0)
        let late = series.last().unwrap().1;
        assert!(
            late > early,
            "heterogeeneity should grow: early {early}, late {late}"
        );
        assert!(r.metrics.get("heterogeneity_final").unwrap() > 0.01);
    }

    #[test]
    fn broadcast_policies_stay_more_homogeneous() {
        let bc = run(HandoverStrategy::Broadcast, 3, 3000);
        let sa = run(HandoverStrategy::self_aware_default(), 3, 3000);
        // Broadcast also updates affinities, but asks everyone anyway;
        // its *effective* policy stays closer to uniform than the
        // self-aware ask-sets, which specialise. Compare final scores.
        let h_bc = bc.metrics.get("heterogeneity_final").unwrap();
        let h_sa = sa.metrics.get("heterogeneity_final").unwrap();
        // Both learn affinity, so just require self-aware is at least
        // comparable; the series *shape* is what F1 plots.
        assert!(h_sa > 0.0 && h_bc >= 0.0);
    }

    #[test]
    fn smooth_cheaper_but_losier_than_broadcast() {
        let bc = run(HandoverStrategy::Broadcast, 2, 3000);
        let sm = run(HandoverStrategy::Smooth { k: 3 }, 2, 3000);
        assert!(
            sm.metrics.get("messages_per_tick").unwrap()
                < bc.metrics.get("messages_per_tick").unwrap()
        );
        assert!(
            sm.metrics.get("untracked_ratio").unwrap()
                >= bc.metrics.get("untracked_ratio").unwrap()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(HandoverStrategy::Static { k: 3 }, 7, 800);
        let b = run(HandoverStrategy::Static { k: 3 }, 7, 800);
        assert_eq!(a.metrics, b.metrics);
    }

    fn outage_cfg(strategy: HandoverStrategy, steps: u64) -> CamnetConfig {
        use workloads::faults::FaultEvent;
        let mut cfg = CamnetConfig::standard(strategy, steps);
        // Kill the four central cameras of the 4×4 grid for the middle
        // third of the run.
        let mut plan = FaultPlan::none();
        for cam in [5, 6, 9, 10] {
            plan = plan
                .and(FaultEvent::camera_fail(Tick(steps / 3), cam))
                .and(FaultEvent::camera_recover(Tick(2 * steps / 3), cam));
        }
        cfg.faults = plan;
        cfg
    }

    #[test]
    fn camera_outage_degrades_then_recovers() {
        let steps = 3000;
        let healthy = run(HandoverStrategy::Broadcast, 11, steps);
        let faulty = run_camnet(
            &outage_cfg(HandoverStrategy::Broadcast, steps),
            &SeedTree::new(11),
        );
        let q_h = healthy.metrics.get("track_quality").unwrap();
        let q_f = faulty.metrics.get("track_quality").unwrap();
        assert!(q_f < q_h, "outage must cost quality: {q_f} vs {q_h}");
        // After recovery the last quality window should be back near
        // the pre-fault level.
        let pts = faulty.quality.points();
        let pre: Vec<f64> = pts
            .iter()
            .filter(|&&(t, _)| t < steps / 3)
            .map(|&(_, q)| q)
            .collect();
        let pre_mean = pre.iter().sum::<f64>() / pre.len() as f64;
        let last = pts.last().unwrap().1;
        assert!(
            last > 0.8 * pre_mean,
            "should recover after reboot: pre {pre_mean}, last {last}"
        );
    }

    #[test]
    fn surviving_cameras_pick_up_dropped_objects() {
        let r = run_camnet(
            &outage_cfg(HandoverStrategy::self_aware_default(), 3000),
            &SeedTree::new(12),
        );
        // The network must not collapse: redetection and coalition
        // re-formation keep most object-ticks tracked.
        assert!(r.metrics.get("untracked_ratio").unwrap() < 0.35);
        assert!(r.metrics.get("track_quality").unwrap() > 0.3);
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let a = run_camnet(
            &outage_cfg(HandoverStrategy::self_aware_default(), 900),
            &SeedTree::new(8),
        );
        let b = run_camnet(
            &outage_cfg(HandoverStrategy::self_aware_default(), 900),
            &SeedTree::new(8),
        );
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn supervised_network_survives_affinity_corruption() {
        use workloads::faults::{FaultEvent, ModelCorruptionKind};
        let steps = 4000;
        let cfg = |supervise| {
            let mut c = CamnetConfig::standard(HandoverStrategy::self_aware_default(), steps);
            c.supervise = supervise;
            c.faults = FaultPlan::none()
                .and(FaultEvent::model_corruption(
                    Tick(steps / 3),
                    0,
                    ModelCorruptionKind::NanPoison,
                ))
                .and(FaultEvent::model_corruption(
                    Tick(2 * steps / 3),
                    0,
                    ModelCorruptionKind::WeightScramble { gain: 30.0 },
                ));
            c
        };
        let sup = run_camnet(&cfg(true), &SeedTree::new(21));
        let interventions = sup.metrics.get("model_rollbacks").unwrap()
            + sup.metrics.get("model_fallbacks").unwrap();
        assert!(
            interventions >= 1.0,
            "supervisor should intervene: {interventions}"
        );
        assert!(
            sup.metrics.get("track_quality").unwrap() > 0.4,
            "supervised network should keep tracking: {:?}",
            sup.metrics.get("track_quality")
        );
        let again = run_camnet(&cfg(true), &SeedTree::new(21));
        assert_eq!(sup.metrics, again.metrics, "supervised runs deterministic");
    }

    #[test]
    fn unsupervised_metrics_report_zero_interventions() {
        let r = run(HandoverStrategy::Broadcast, 2, 500);
        assert_eq!(r.metrics.get("model_rollbacks"), Some(0.0));
        assert_eq!(r.metrics.get("model_fallbacks"), Some(0.0));
    }

    fn lossy_cfg(loss: f64, comms: CommsPolicy, seed: u64, steps: u64) -> CamnetConfig {
        use workloads::faults::LinkModel;
        let mut cfg = CamnetConfig::standard(HandoverStrategy::self_aware_default(), steps);
        cfg.channel = ChannelPlan::uniform(&SeedTree::new(seed ^ 0xC4A7), LinkModel::lossy(loss));
        cfg.comms = comms;
        cfg
    }

    #[test]
    fn staleness_aware_outtracks_naive_on_lossy_channel() {
        let mut aware_wins = 0;
        for seed in 0..3u64 {
            let naive = run_camnet(
                &lossy_cfg(0.3, CommsPolicy::Naive, seed, 3000),
                &SeedTree::new(seed),
            );
            let aware = run_camnet(
                &lossy_cfg(0.3, CommsPolicy::default(), seed, 3000),
                &SeedTree::new(seed),
            );
            let u_n = naive.metrics.get("untracked_ratio").unwrap();
            let u_a = aware.metrics.get("untracked_ratio").unwrap();
            if u_a < u_n {
                aware_wins += 1;
            }
        }
        assert!(
            aware_wins >= 2,
            "aborted handovers should beat objects lost in transit ({aware_wins}/3)"
        );
    }

    #[test]
    fn lossy_runs_are_deterministic_per_seed() {
        let a = run_camnet(
            &lossy_cfg(0.25, CommsPolicy::default(), 4, 900),
            &SeedTree::new(4),
        );
        let b = run_camnet(
            &lossy_cfg(0.25, CommsPolicy::default(), 4, 900),
            &SeedTree::new(4),
        );
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn partition_events_reach_the_comms_log() {
        let steps = 1200;
        let mut cfg = lossy_cfg(0.1, CommsPolicy::default(), 9, steps);
        cfg.channel = cfg
            .channel
            .with_partition(steps / 3, steps / 4, vec![0, 1, 4, 5]);
        let r = run_camnet(&cfg, &SeedTree::new(9));
        assert!(
            r.metrics.get("comms_partition_hits").unwrap() > 0.0,
            "boundary links must hit the partition window"
        );
        assert!(
            !r.comms_log.find_by_action("comms:partition").is_empty(),
            "partition onset must be explained"
        );
    }

    #[test]
    fn goal_rewards_quality_and_thrift() {
        let g = camnet_goal();
        let lavish = g.utility(|k| match k {
            "track_quality" => Some(0.8),
            "ask_ratio" => Some(1.0),
            _ => None,
        });
        let thrifty = g.utility(|k| match k {
            "track_quality" => Some(0.78),
            "ask_ratio" => Some(0.2),
            _ => None,
        });
        assert!(thrifty > lavish);
    }
}

#[cfg(test)]
mod home_bias_tests {
    use super::*;

    #[test]
    fn home_bias_increases_emergent_heterogeneity() {
        let mut uniform_cfg = CamnetConfig::standard(HandoverStrategy::self_aware_default(), 4000);
        let mut biased_cfg = uniform_cfg.clone();
        biased_cfg.home_bias = true;
        uniform_cfg.home_bias = false;
        let mut biased_wins = 0;
        for seed in 0..3u64 {
            let uniform = run_camnet(&uniform_cfg, &SeedTree::new(seed));
            let biased = run_camnet(&biased_cfg, &SeedTree::new(seed));
            if biased.metrics.get("heterogeneity_final").unwrap()
                > uniform.metrics.get("heterogeneity_final").unwrap()
            {
                biased_wins += 1;
            }
        }
        assert!(
            biased_wins >= 2,
            "spatially uneven demand should amplify specialisation ({biased_wins}/3)"
        );
    }

    #[test]
    fn home_bias_still_tracks_well() {
        let mut cfg = CamnetConfig::standard(HandoverStrategy::self_aware_default(), 3000);
        cfg.home_bias = true;
        let r = run_camnet(&cfg, &SeedTree::new(1));
        assert!(r.metrics.get("track_quality").unwrap() > 0.4);
        assert!(r.metrics.get("untracked_ratio").unwrap() < 0.1);
    }
}

#[cfg(test)]
mod probe {
    use super::*;

    #[test]
    #[ignore]
    fn print_strategy_metrics() {
        for strat in [
            HandoverStrategy::Broadcast,
            HandoverStrategy::self_aware_default(),
            HandoverStrategy::Smooth { k: 3 },
        ] {
            let r = run_camnet(&CamnetConfig::standard(strat, 4000), &SeedTree::new(0));
            println!("--- {}", strat.label());
            for (k, v) in r.metrics.iter() {
                println!("{k} = {v:.4}");
            }
        }
    }
}
