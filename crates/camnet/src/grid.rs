//! Uniform-grid spatial index over points in the unit square.
//!
//! The dense camera loop answers "which cameras see this object?" by
//! scanning all `n` cameras — O(n) per object, O(n·m) per tick, the
//! cost that caps the network at tens of cameras (ROADMAP item 1). The
//! grid bins points into square cells of edge `cell ≥ query radius`,
//! so a radius query inspects at most the 3×3 cell block around the
//! centre: O(points in the neighbourhood), independent of the network
//! size.
//!
//! Determinism contract: [`GridIndex::query_circle_into`] returns hits
//! in **ascending id order** and filters by *exact* Euclidean distance
//! (`d ≤ r`), so iterating the result set is bit-identical to the
//! dense scan `(0..n).filter(|i| dist(i) <= r)` — the property the
//! dense-vs-sparse parity proptests pin down. The index is cheap to
//! rebuild (counting sort, O(points + cells)) so per-tick rebuilds
//! over moving objects are fine.

use workloads::trajectories::Point;

/// A rebuildable uniform grid over points in `[0, 1] × [0, 1]`.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: f64,
    cols: usize,
    // CSR layout: ids of the points in cell c are
    // `ids[starts[c] .. starts[c + 1]]`, ascending within each cell.
    starts: Vec<u32>,
    ids: Vec<u32>,
    points: Vec<Point>,
}

impl GridIndex {
    /// Builds an index over `points` with cells of edge `cell`.
    ///
    /// Radius queries are exact for any radius `r ≤ cell`; larger
    /// radii would need a wider cell block than the 3×3 the query
    /// visits.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not positive and finite.
    #[must_use]
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell edge must be positive");
        // Round the cell count DOWN so each actual cell is at least
        // `cell` wide — a query with radius ≤ the requested edge must
        // stay exact. At least one cell per axis; cap the grid so
        // degenerate tiny cells cannot blow up memory (beyond 4096²
        // the 3×3 block is already far below one point per cell for
        // any realistic n).
        let cols = (((1.0 / cell) + 1e-9).floor() as usize).clamp(1, 4096);
        let ncells = cols * cols;
        let mut counts = vec![0u32; ncells + 1];
        let cell_of = |p: &Point| -> usize {
            let cx = ((p.x * cols as f64) as usize).min(cols - 1);
            let cy = ((p.y * cols as f64) as usize).min(cols - 1);
            cy * cols + cx
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for c in 0..ncells {
            counts[c + 1] += counts[c];
        }
        let starts = counts;
        let mut cursor = starts.clone();
        let mut ids = vec![0u32; points.len()];
        // Points are inserted in id order, so ids ascend within each
        // cell — the property the ordered query below relies on.
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            ids[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }
        Self {
            cell: 1.0 / cols as f64,
            cols,
            starts,
            ids,
            points: points.to_vec(),
        }
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Collects into `out` the ids of all indexed points within exact
    /// Euclidean distance `r` of `center`, in ascending id order.
    /// `out` is cleared first; the caller reuses one buffer across
    /// queries to keep the hot loop allocation-free.
    ///
    /// Exact only for `r ≤ cell` (see [`GridIndex::build`]); a larger
    /// radius silently misses points outside the 3×3 block, so debug
    /// builds assert against it.
    pub fn query_circle_into(&self, center: Point, r: f64, out: &mut Vec<usize>) {
        debug_assert!(
            r <= self.cell * (1.0 + 1e-9),
            "query radius {r} exceeds cell edge {}",
            self.cell
        );
        out.clear();
        let cx = ((center.x * self.cols as f64) as isize).clamp(0, self.cols as isize - 1);
        let cy = ((center.y * self.cols as f64) as isize).clamp(0, self.cols as isize - 1);
        for dy in -1..=1isize {
            let y = cy + dy;
            if y < 0 || y >= self.cols as isize {
                continue;
            }
            for dx in -1..=1isize {
                let x = cx + dx;
                if x < 0 || x >= self.cols as isize {
                    continue;
                }
                let c = y as usize * self.cols + x as usize;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &id in &self.ids[lo..hi] {
                    let id = id as usize;
                    if self.points[id].distance(center) <= r {
                        out.push(id);
                    }
                }
            }
        }
        // Cells are visited in row-major order, ids ascend only within
        // a cell; one sort restores the global id order the parity
        // contract requires. The result set is a handful of
        // neighbours, so this is cheap.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;
    use simkernel::SeedTree;

    fn dense_query(points: &[Point], center: Point, r: f64) -> Vec<usize> {
        (0..points.len())
            .filter(|&i| points[i].distance(center) <= r)
            .collect()
    }

    #[test]
    fn matches_dense_scan_on_random_points() {
        let mut rng = SeedTree::new(7).rng("grid");
        let points: Vec<Point> = (0..500).map(|_| Point::random(&mut rng)).collect();
        let r = 0.05;
        let grid = GridIndex::build(&points, r);
        let mut out = Vec::new();
        for _ in 0..200 {
            let c = Point::random(&mut rng);
            grid.query_circle_into(c, r, &mut out);
            assert_eq!(out, dense_query(&points, c, r));
        }
    }

    #[test]
    fn results_are_id_sorted_and_buffer_is_cleared() {
        let points = vec![
            Point::new(0.52, 0.5),
            Point::new(0.48, 0.5),
            Point::new(0.5, 0.52),
            Point::new(0.9, 0.9),
        ];
        let grid = GridIndex::build(&points, 0.1);
        let mut out = vec![999]; // stale content must be cleared
        grid.query_circle_into(Point::new(0.5, 0.5), 0.1, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn boundary_points_are_indexed() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let grid = GridIndex::build(&points, 0.25);
        assert_eq!(grid.len(), 4);
        let mut out = Vec::new();
        grid.query_circle_into(Point::new(1.0, 1.0), 0.2, &mut out);
        assert_eq!(out, vec![1]);
        grid.query_circle_into(Point::new(0.0, 0.0), 0.2, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn empty_index_answers_empty() {
        let grid = GridIndex::build(&[], 0.1);
        assert!(grid.is_empty());
        let mut out = Vec::new();
        grid.query_circle_into(Point::new(0.5, 0.5), 0.1, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn rebuild_tracks_moving_points() {
        let mut rng = SeedTree::new(9).rng("move");
        let mut points: Vec<Point> = (0..100).map(|_| Point::random(&mut rng)).collect();
        let r = 0.08;
        let mut out = Vec::new();
        for _ in 0..20 {
            for p in &mut points {
                p.x = (p.x + rng.gen::<f64>() * 0.02).min(1.0);
                p.y = (p.y + rng.gen::<f64>() * 0.02).min(1.0);
            }
            let grid = GridIndex::build(&points, r);
            let c = Point::random(&mut rng);
            grid.query_circle_into(c, r, &mut out);
            assert_eq!(out, dense_query(&points, c, r));
        }
    }

    #[test]
    #[should_panic(expected = "cell edge must be positive")]
    fn zero_cell_panics() {
        let _ = GridIndex::build(&[], 0.0);
    }
}
