//! The network's learned affinity state in struct-of-arrays layout.
//!
//! Each camera learns one affinity score and one invite count per
//! peer. Storing those rows inside each [`crate::camera::Camera`]
//! (array-of-structs) scattered the hottest data of the auction loop
//! across `n` separate heap allocations and forced the
//! staleness-blend path to clone a row per auction. This table keeps
//! the whole network's state in two contiguous row-major buffers, so
//! the per-auction hot path (affinity reads, auction updates) touches
//! one cache-friendly slab and never allocates, and a supervisor
//! checkpoint is a single flat copy instead of `n` row clones.

/// Row-major `n × n` learned state for the whole camera network:
/// `affinity[me * n + other]` is camera `me`'s learned affinity toward
/// camera `other`, `invites[me * n + other]` how often `me` has
/// invited `other` to an auction.
#[derive(Debug, Clone, PartialEq)]
pub struct AffinityTable {
    n: usize,
    affinity: Vec<f64>,
    invites: Vec<u64>,
}

impl AffinityTable {
    /// Prior affinity before any handover evidence.
    pub const PRIOR: f64 = 0.5;

    /// Creates the table for an `n`-camera network, every score at
    /// [`Self::PRIOR`] and every invite count at zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            affinity: vec![Self::PRIOR; n * n],
            invites: vec![0; n * n],
        }
    }

    /// Number of cameras.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Camera `me`'s learned affinity for camera `other`
    /// (probability-like score that inviting them to an auction is
    /// worthwhile).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn affinity(&self, me: usize, other: usize) -> f64 {
        assert!(me < self.n && other < self.n, "camera index out of range");
        self.affinity[me * self.n + other]
    }

    /// Camera `me`'s full affinity row (one score per camera,
    /// including self).
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range.
    #[must_use]
    pub fn row(&self, me: usize) -> &[f64] {
        &self.affinity[me * self.n..(me + 1) * self.n]
    }

    /// Updates camera `me`'s affinity for `other` after an auction
    /// they were invited to: `won` is whether they took the object
    /// over.
    ///
    /// Wins reinforce strongly; losses decay gently (losing one
    /// auction usually means "the object was not near you this time",
    /// not "you are never useful" — an asymmetry Esterle-style
    /// pheromone link strengths share).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record_auction(&mut self, me: usize, other: usize, won: bool) {
        assert!(me < self.n && other < self.n, "camera index out of range");
        let a = &mut self.affinity[me * self.n + other];
        if won {
            *a += 0.3 * (1.0 - *a);
        } else {
            *a *= 0.94;
        }
        self.invites[me * self.n + other] += 1;
    }

    /// Times camera `me` has invited camera `other`.
    #[must_use]
    pub fn invite_count(&self, me: usize, other: usize) -> u64 {
        assert!(me < self.n && other < self.n, "camera index out of range");
        self.invites[me * self.n + other]
    }

    /// Camera `me`'s ask-preference distribution over peers (excluding
    /// itself): normalised affinities — the camera's *latent beliefs*
    /// about who wins its handovers.
    #[must_use]
    pub fn preference(&self, me: usize) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .row(me)
            .iter()
            .enumerate()
            .map(|(j, &a)| if j == me { 0.0 } else { a.max(1e-9) })
            .collect();
        normalise(&mut v);
        v
    }

    /// Camera `me`'s *behavioural* ask distribution: the proportion of
    /// auction invitations actually sent to each peer. This — not the
    /// latent beliefs — is what the F1 heterogeneity metric compares,
    /// because a broadcast camera may *learn* distinct affinities yet
    /// still ask everyone (behaviourally homogeneous), while a
    /// self-aware camera's invitations themselves specialise. Uniform
    /// over peers until the first invitation.
    #[must_use]
    pub fn ask_distribution(&self, me: usize) -> Vec<f64> {
        let row = &self.invites[me * self.n..(me + 1) * self.n];
        let total: u64 = row.iter().sum();
        if total == 0 {
            let mut v = vec![1.0 / (self.n.max(2) - 1) as f64; self.n];
            v[me] = 0.0;
            return v;
        }
        let mut v: Vec<f64> = row.iter().map(|&c| c as f64).collect();
        v[me] = 0.0;
        normalise(&mut v);
        v
    }

    /// Flat copy of every affinity score, row-major — the network's
    /// *model state*, snapshotted by supervisors for checkpoints.
    #[must_use]
    pub fn snapshot(&self) -> Vec<f64> {
        self.affinity.clone()
    }

    /// Restores the whole table from a [`Self::snapshot`] (checkpoint
    /// rollback).
    ///
    /// # Panics
    ///
    /// Panics if `snapshot` is not `n × n` scores.
    pub fn restore(&mut self, snapshot: &[f64]) {
        assert_eq!(
            snapshot.len(),
            self.affinity.len(),
            "snapshot must cover every affinity score"
        );
        self.affinity.copy_from_slice(snapshot);
    }

    /// Overwrites every affinity score (fault injection).
    pub fn fill(&mut self, value: f64) {
        self.affinity.fill(value);
    }

    /// Applies `f` to every affinity score in place (fault injection).
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for a in &mut self.affinity {
            *a = f(*a);
        }
    }

    /// Mean of every affinity score (row-major accumulation order, so
    /// it matches summing a [`Self::snapshot`]). NaN poison anywhere
    /// in the table surfaces here immediately.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.affinity.iter().sum::<f64>() / self.affinity.len().max(1) as f64
    }
}

fn normalise(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_learning_moves_toward_outcomes() {
        let mut t = AffinityTable::new(4);
        assert_eq!(t.affinity(0, 1), AffinityTable::PRIOR);
        for _ in 0..50 {
            t.record_auction(0, 1, true);
            t.record_auction(0, 2, false);
        }
        assert!(t.affinity(0, 1) > 0.95);
        assert!(t.affinity(0, 2) < 0.05);
        assert_eq!(t.invite_count(0, 1), 50);
        assert_eq!(t.invite_count(0, 3), 0);
        // Other rows untouched.
        assert_eq!(t.affinity(1, 2), AffinityTable::PRIOR);
        assert_eq!(t.invite_count(1, 2), 0);
    }

    #[test]
    fn preference_excludes_self_and_normalises() {
        let mut t = AffinityTable::new(4);
        t.record_auction(0, 1, true);
        let p = t.preference(0);
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], 0.0, "self excluded");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > p[2]);
    }

    #[test]
    fn ask_distribution_uniform_before_any_invites() {
        let t = AffinityTable::new(4);
        let d = t.ask_distribution(1);
        assert_eq!(d[1], 0.0);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((d[0] - d[2]).abs() < 1e-12);
    }

    #[test]
    fn ask_distribution_reflects_actual_invitations() {
        let mut t = AffinityTable::new(4);
        for _ in 0..9 {
            t.record_auction(0, 1, false);
        }
        t.record_auction(0, 2, true);
        let d = t.ask_distribution(0);
        assert!((d[1] - 0.9).abs() < 1e-9);
        assert!((d[2] - 0.1).abs() < 1e-9);
        assert_eq!(d[3], 0.0);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut t = AffinityTable::new(3);
        t.record_auction(0, 1, true);
        t.record_auction(2, 0, false);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 9);
        t.fill(f64::NAN);
        assert!(t.mean().is_nan());
        t.restore(&snap);
        assert_eq!(t.snapshot(), snap);
        assert!(t.affinity(0, 1) > AffinityTable::PRIOR);
    }

    #[test]
    fn map_in_place_hits_every_score() {
        let mut t = AffinityTable::new(3);
        t.map_in_place(|a| (a - 1.0) * 30.0);
        for me in 0..3 {
            for j in 0..3 {
                assert!((t.affinity(me, j) + 15.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mean_matches_flat_snapshot_sum() {
        let mut t = AffinityTable::new(3);
        t.record_auction(1, 2, true);
        let flat = t.snapshot();
        let expect = flat.iter().sum::<f64>() / flat.len() as f64;
        assert_eq!(t.mean(), expect);
    }

    #[test]
    #[should_panic(expected = "camera index out of range")]
    fn out_of_range_read_panics() {
        let t = AffinityTable::new(2);
        let _ = t.affinity(0, 2);
    }

    #[test]
    #[should_panic(expected = "snapshot must cover every affinity score")]
    fn short_snapshot_panics() {
        let mut t = AffinityTable::new(2);
        t.restore(&[0.5; 3]);
    }
}
