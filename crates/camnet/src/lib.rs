//! # camnet — a distributed smart-camera network simulator
//!
//! Reproduces the paper's flagship case study (refs 11, 13, 17, 48):
//! a decentralised network of smart cameras tracking moving objects,
//! where responsibility for each object is *traded between cameras* in
//! a market-style handover auction. The design tension is exactly the
//! paper's run-time trade-off: tracking quality (ask widely, never
//! lose an object) versus communication cost (each ask is a message a
//! bandwidth-constrained camera can ill afford).
//!
//! Lewis et al. \[13\] showed that when each camera *learns for itself*
//! whom to ask, cameras "learn to be different from each other, in
//! line with their own perceptions of the world" — emergent
//! heterogeneity with near-broadcast utility at a fraction of the
//! cost. Experiments T3 and F1 reproduce that result's shape.
//!
//! * [`camera`] — camera geometry (position, field of view);
//! * [`affinity`] — the network's learned affinity state in
//!   struct-of-arrays layout;
//! * [`strategy`] — handover strategies (broadcast, smooth, static,
//!   self-aware learning);
//! * [`diversity`] — the policy-divergence heterogeneity metric;
//! * [`sim`] — the world: objects, ownership, auctions, metrics;
//! * [`grid`] — a uniform-grid spatial index for FOV queries;
//! * [`des`] — the event-driven F12 world at 10k-camera scale, with
//!   sparse activation on [`simkernel::SimScheduler`].

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::panic)]
#![warn(missing_docs)]

pub mod affinity;
pub mod camera;
pub mod des;
pub mod diversity;
pub mod grid;
pub mod sim;
pub mod strategy;

pub use affinity::AffinityTable;
pub use camera::Camera;
pub use des::{run_des_camnet, DesCamnetConfig, DesCamnetResult};
pub use diversity::policy_divergence;
pub use grid::GridIndex;
pub use sim::{run_camnet, CamnetConfig, CamnetResult};
pub use strategy::HandoverStrategy;
