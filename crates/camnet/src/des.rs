//! Event-driven camera network at city scale (experiment F12).
//!
//! The auction world in [`crate::sim`] visits every camera every tick
//! — fine at 16 cameras, hopeless at 10 000. This module hosts the
//! F12 tracking world on [`simkernel::SimScheduler`]: a camera is
//! visited only when an object is inside its neighbourhood (a
//! dirty-input wake) or a scheduled fault falls due (a `wake_at`
//! planted when the run starts — fault plans schedule wake events,
//! they are never polled). Object→camera visibility queries go through
//! the [`crate::grid::GridIndex`], so one camera visit costs
//! O(objects nearby), not O(objects), and one tick costs O(active
//! neighbourhoods), not O(cameras × objects).
//!
//! ## Dense-vs-sparse equivalence
//!
//! The legacy dense loop stays selectable via
//! [`simkernel::DriveMode::Dense`] so the sparse path can be
//! equivalence-tested. Both modes draw the *same* RNG stream (objects
//! are stepped densely in id order in both — cameras consume no
//! randomness), iterate seers in ascending camera id, and accumulate
//! floats in the same order, so simulation metrics are bit-identical;
//! only wall-clock and [`simkernel::ActivationStats`] differ. The
//! proptests in `tests/des_parity.rs` pin this down.

use crate::camera::Camera;
use crate::grid::GridIndex;
use simkernel::rng::SeedTree;
use simkernel::{ActivationStats, DriveMode, MetricSet, SimScheduler, Tick, WakeDedup};
use workloads::faults::{FaultKind, FaultPlan};
use workloads::trajectories::{Point, Wanderer};

/// Priority class for fault wakes: applied at the top of the tick,
/// before any camera visit.
pub const CLASS_FAULT: u8 = 0;
/// Priority class for dirty-input camera visits.
pub const CLASS_CAMERA: u8 = 1;

/// Configuration of an F12-scale tracking scenario.
#[derive(Debug, Clone)]
pub struct DesCamnetConfig {
    /// Cameras on a `side × side` grid (10k cameras ⇒ `side = 100`).
    pub side: usize,
    /// Field-of-view radius. [`DesCamnetConfig::at_scale`] picks
    /// `2.5 / side`, keeping the *neighbourhood population* — and so
    /// the per-visit cost — independent of network size.
    pub fov_radius: f64,
    /// Number of wandering objects.
    pub objects: usize,
    /// Object speed per tick.
    pub speed: f64,
    /// Simulation length in ticks.
    pub steps: u64,
    /// Bias objects toward scene-corner home regions (spatially
    /// uneven demand, as in the auction world).
    pub home_bias: bool,
    /// Scheduled camera faults (`CameraFail` / `CameraRecover`; other
    /// kinds are ignored by this world).
    pub faults: FaultPlan,
    /// Dense (legacy, equivalence baseline) or sparse (DES) driving.
    pub drive: DriveMode,
}

impl DesCamnetConfig {
    /// A scenario with `side × side` cameras and scale-free FOV.
    #[must_use]
    pub fn at_scale(side: usize, objects: usize, steps: u64) -> Self {
        Self {
            side,
            fov_radius: 2.5 / side as f64,
            objects,
            speed: 0.004,
            steps,
            home_bias: false,
            faults: FaultPlan::none(),
            drive: DriveMode::Sparse,
        }
    }
}

/// Outputs of an F12 tracking run.
#[derive(Debug, Clone)]
pub struct DesCamnetResult {
    /// Simulation metrics — bit-identical across [`DriveMode`]s:
    ///
    /// * `track_quality` — mean best-seer quality per object-tick;
    /// * `untracked_ratio` — object-ticks with no live seer;
    /// * `detections_per_object_tick` — mean live seers per object-tick;
    /// * `handovers` — best-seer ownership changes;
    /// * `camera_downtime_ticks` — Σ over ticks of dead cameras;
    /// * `utility` — `track_quality − 0.5 × untracked_ratio`.
    pub metrics: MetricSet,
    /// Activation accounting (differs across modes by design).
    pub perf: ActivationStats,
}

/// Per-camera fault timeline: `(tick, alive_after)` edges in tick
/// order, consumed by a cursor when the fault wake fires.
struct FaultEdges {
    edges: Vec<Vec<(u64, bool)>>,
    cursor: Vec<usize>,
}

impl FaultEdges {
    fn build(plan: &FaultPlan, n: usize) -> Self {
        let mut edges = vec![Vec::new(); n];
        for ev in plan.events() {
            match ev.kind {
                FaultKind::CameraFail { camera } if camera < n => {
                    edges[camera].push((ev.at.value(), false));
                }
                FaultKind::CameraRecover { camera } if camera < n => {
                    edges[camera].push((ev.at.value(), true));
                }
                _ => {}
            }
        }
        Self {
            edges,
            cursor: vec![0; n],
        }
    }

    /// Applies every edge for `cam` due at or before `now`; returns
    /// the final liveness if any edge fired.
    fn apply(&mut self, cam: usize, now: Tick) -> Option<bool> {
        let mut state = None;
        let evs = &self.edges[cam];
        let c = &mut self.cursor[cam];
        while *c < evs.len() && evs[*c].0 <= now.value() {
            state = Some(evs[*c].1);
            *c += 1;
        }
        state
    }
}

/// Runs an F12 tracking scenario (see [`DesCamnetResult`] for metric
/// keys).
///
/// # Panics
///
/// Panics if the configuration has fewer than one camera.
#[must_use]
pub fn run_des_camnet(cfg: &DesCamnetConfig, seeds: &SeedTree) -> DesCamnetResult {
    let n = cfg.side * cfg.side;
    assert!(n >= 1, "need at least one camera");
    let sparse = cfg.drive == DriveMode::Sparse;
    let cameras: Vec<Camera> = (0..n)
        .map(|i| {
            let x = (i % cfg.side) as f64 / cfg.side as f64 + 0.5 / cfg.side as f64;
            let y = (i / cfg.side) as f64 / cfg.side as f64 + 0.5 / cfg.side as f64;
            Camera::new(i, Point::new(x, y), cfg.fov_radius, n)
        })
        .collect();
    // The camera layout is static: build its index once. Objects move,
    // so (in sparse mode) their index is rebuilt each tick.
    let camera_grid = GridIndex::build(
        &cameras.iter().map(Camera::position).collect::<Vec<_>>(),
        cfg.fov_radius,
    );

    let mut obj_rng = seeds.rng("objects");
    let mut objects: Vec<Wanderer> = (0..cfg.objects)
        .map(|i| {
            let w = Wanderer::new(cfg.speed, &mut obj_rng);
            if cfg.home_bias {
                let corner = i % 4;
                let home = Point::new(
                    if corner % 2 == 0 { 0.25 } else { 0.75 },
                    if corner / 2 == 0 { 0.25 } else { 0.75 },
                );
                w.with_home(home, 0.2)
            } else {
                w
            }
        })
        .collect();
    let mut positions: Vec<Point> = objects.iter().map(Wanderer::position).collect();

    let mut alive = vec![true; n];
    let mut dead_count = 0u64;
    let mut edges = FaultEdges::build(&cfg.faults, n);
    // Both modes drive faults through the scheduler: the plan plants
    // its wakes up front and is never polled per tick.
    let mut sched: SimScheduler<usize> = SimScheduler::new();
    let scheduled_faults = cfg
        .faults
        .schedule_wakes(&mut sched, CLASS_FAULT, |ev, keys| match ev.kind {
            FaultKind::CameraFail { camera } | FaultKind::CameraRecover { camera }
                if camera < n =>
            {
                keys.push(camera);
            }
            _ => {}
        });
    let mut dedup = WakeDedup::new(n);

    let mut owner: Vec<Option<usize>> = vec![None; cfg.objects];
    let mut quality_sum = 0.0f64;
    let mut untracked_ticks = 0u64;
    let mut detections = 0u64;
    let mut handovers = 0u64;
    let mut downtime_ticks = 0u64;
    let mut perf = ActivationStats {
        entity_ticks: (n as u64 + cfg.objects as u64) * cfg.steps,
        ..ActivationStats::default()
    };
    // Reused scratch: seer candidates for one object; woken cameras
    // for one tick.
    let mut seers: Vec<usize> = Vec::with_capacity(64);
    let mut woken: Vec<usize> = Vec::with_capacity(256);

    for t in 0..cfg.steps {
        let now = Tick(t);
        sched.advance(now);

        // 1. Fault wakes (class 0). Camera wakes from the previous
        // tick were fully drained, so everything due here is a fault
        // edge; the peek-class guard keeps this robust anyway.
        while sched
            .peek()
            .is_some_and(|(at, c)| at <= now && c == CLASS_FAULT)
        {
            let Some((_, _, cam)) = sched.pop_due(now) else {
                break;
            };
            perf.wakes += 1;
            if let Some(state) = edges.apply(cam, now) {
                if alive[cam] != state {
                    alive[cam] = state;
                    if state {
                        dead_count -= 1;
                    } else {
                        dead_count += 1;
                        // A dying camera loses its objects; ownership
                        // is re-derived below from live seers only, so
                        // clearing is implicit.
                    }
                }
            }
        }
        downtime_ticks += dead_count;

        // 2. Objects step densely in id order in BOTH modes — the
        // single shared RNG draw site, which is what makes the two
        // drive modes bit-identical.
        for (o, w) in objects.iter_mut().enumerate() {
            positions[o] = w.step(&mut obj_rng);
        }
        perf.visits += cfg.objects as u64;

        // 3. Per-object seer resolution, object-major, seers in
        // ascending camera id — identical iteration order either way.
        let object_grid = sparse.then(|| GridIndex::build(&positions, cfg.fov_radius));
        for (o, &pos) in positions.iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            let mut seen = 0u64;
            let mut consider = |cam: usize, q_best: &mut Option<(usize, f64)>| {
                if alive[cam] && cameras[cam].sees(pos) {
                    seen += 1;
                    let q = cameras[cam].quality(pos);
                    if q_best.is_none_or(|(_, b)| q > b) {
                        *q_best = Some((cam, q));
                    }
                }
            };
            if sparse {
                camera_grid.query_circle_into(pos, cfg.fov_radius, &mut seers);
                for &cam in &seers {
                    consider(cam, &mut best);
                    // Dirty input: this camera has an object in its
                    // neighbourhood and must be visited this tick.
                    if alive[cam] && dedup.mark(cam, now) {
                        sched.wake_on_input(CLASS_CAMERA, cam);
                    }
                }
            } else {
                for cam in 0..n {
                    consider(cam, &mut best);
                }
            }
            detections += seen;
            match best {
                Some((cam, q)) => {
                    quality_sum += q;
                    if owner[o].is_some_and(|prev| prev != cam) {
                        handovers += 1;
                    }
                    owner[o] = Some(cam);
                }
                None => {
                    untracked_ticks += 1;
                    owner[o] = None;
                }
            }
        }

        // 4. Camera visits. Dense scans every camera against every
        // object (the honest O(n·m) baseline); sparse visits only the
        // cameras woken above, each answering from the object grid.
        // The per-camera observation (how many objects it can see) is
        // an integer, so visit *order* cannot perturb metrics; both
        // modes still produce identical per-camera counts because an
        // unwoken camera provably sees nothing.
        if sparse {
            woken.clear();
            while let Some((_, class, cam)) = sched.pop_due(now) {
                debug_assert_eq!(class, CLASS_CAMERA);
                perf.wakes += 1;
                woken.push(cam);
            }
            woken.sort_unstable();
            if let Some(grid) = &object_grid {
                for &cam in &woken {
                    perf.visits += 1;
                    grid.query_circle_into(cameras[cam].position(), cfg.fov_radius, &mut seers);
                    let load = seers
                        .iter()
                        .filter(|&&o| cameras[cam].sees(positions[o]))
                        .count();
                    debug_assert!(load > 0, "woken camera must have a nearby object");
                }
            }
        } else {
            for cam in 0..n {
                perf.visits += 1;
                if !alive[cam] {
                    continue;
                }
                let _load = positions.iter().filter(|&&p| cameras[cam].sees(p)).count();
            }
        }
    }
    perf.shed = sched.shed_count();

    let object_ticks = (cfg.steps * cfg.objects as u64).max(1) as f64;
    let mut metrics = MetricSet::new();
    let track_quality = quality_sum / object_ticks;
    let untracked_ratio = untracked_ticks as f64 / object_ticks;
    metrics.set("track_quality", track_quality);
    metrics.set("untracked_ratio", untracked_ratio);
    metrics.set(
        "detections_per_object_tick",
        detections as f64 / object_ticks,
    );
    metrics.set("handovers", handovers as f64);
    metrics.set("camera_downtime_ticks", downtime_ticks as f64);
    metrics.set("fault_wakes_scheduled", scheduled_faults as f64);
    metrics.set("utility", track_quality - 0.5 * untracked_ratio);

    DesCamnetResult { metrics, perf }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::faults::FaultEvent;

    fn run(cfg: &DesCamnetConfig, seed: u64) -> DesCamnetResult {
        run_des_camnet(cfg, &SeedTree::new(seed))
    }

    #[test]
    fn dense_and_sparse_metrics_are_bit_identical() {
        let mut cfg = DesCamnetConfig::at_scale(8, 12, 400);
        cfg.faults = FaultPlan::none()
            .and(FaultEvent::camera_fail(Tick(100), 10))
            .and(FaultEvent::camera_recover(Tick(250), 10));
        for seed in [1, 7] {
            cfg.drive = DriveMode::Dense;
            let dense = run(&cfg, seed);
            cfg.drive = DriveMode::Sparse;
            let sparse = run(&cfg, seed);
            assert_eq!(dense.metrics, sparse.metrics);
            assert!(sparse.perf.visits < dense.perf.visits);
        }
    }

    #[test]
    fn sparse_tracks_objects() {
        let r = run(&DesCamnetConfig::at_scale(20, 32, 600), 3);
        let q = r.metrics.get("track_quality").unwrap();
        assert!(q > 0.1, "objects should be tracked: {q}");
        assert!(r.metrics.get("untracked_ratio").unwrap() < 0.9);
        assert_eq!(r.perf.shed, 0);
    }

    #[test]
    fn sparse_visit_count_scales_with_objects_not_cameras() {
        let small = run(&DesCamnetConfig::at_scale(10, 16, 200), 5);
        let big = run(&DesCamnetConfig::at_scale(40, 16, 200), 5);
        // 16× the cameras, same objects: sparse visits stay in the
        // same ballpark instead of growing 16×.
        assert!(
            (big.perf.visits as f64) < 4.0 * small.perf.visits as f64,
            "sparse visits must not scale with camera count: {} vs {}",
            big.perf.visits,
            small.perf.visits
        );
        assert!(big.perf.entity_ticks > 10 * small.perf.entity_ticks);
    }

    #[test]
    fn pending_fault_fires_even_with_no_objects_near() {
        // Zero objects: no camera is ever input-woken, so only the
        // fault wakes can reach the corner camera. Sparse activation
        // must still apply the fail/recover edges on time.
        let mut cfg = DesCamnetConfig::at_scale(6, 0, 300);
        cfg.faults = FaultPlan::none()
            .and(FaultEvent::camera_fail(Tick(50), 0))
            .and(FaultEvent::camera_recover(Tick(150), 0));
        for drive in [DriveMode::Dense, DriveMode::Sparse] {
            cfg.drive = drive;
            let r = run(&cfg, 11);
            assert_eq!(
                r.metrics.get("camera_downtime_ticks"),
                Some(100.0),
                "{drive:?} must apply the corner camera's fault edges"
            );
            assert_eq!(r.metrics.get("fault_wakes_scheduled"), Some(2.0));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DesCamnetConfig::at_scale(12, 10, 300);
        let a = run(&cfg, 42);
        let b = run(&cfg, 42);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.perf, b.perf);
    }
}
