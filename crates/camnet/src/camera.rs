//! Camera geometry and per-neighbour learned affinity.

use workloads::trajectories::Point;

/// A fixed smart camera with a circular field of view.
///
/// Each camera also carries a learned *affinity* score per other
/// camera: its running estimate of how often that neighbour wins the
/// handovers it is invited to. The self-aware strategy reads and
/// updates these; static strategies ignore them.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    id: usize,
    position: Point,
    fov_radius: f64,
    affinity: Vec<f64>,
    invites: Vec<u64>,
}

impl Camera {
    /// Prior affinity before any handover evidence.
    pub const AFFINITY_PRIOR: f64 = 0.5;

    /// Creates camera `id` at `position` with `fov_radius`, in a
    /// network of `n_cameras`.
    ///
    /// # Panics
    ///
    /// Panics if `fov_radius <= 0` or `id >= n_cameras`.
    #[must_use]
    pub fn new(id: usize, position: Point, fov_radius: f64, n_cameras: usize) -> Self {
        assert!(fov_radius > 0.0, "fov radius must be positive");
        assert!(id < n_cameras, "camera id out of range");
        Self {
            id,
            position,
            fov_radius,
            affinity: vec![Self::AFFINITY_PRIOR; n_cameras],
            invites: vec![0; n_cameras],
        }
    }

    /// Camera id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Camera position.
    #[must_use]
    pub fn position(&self) -> Point {
        self.position
    }

    /// Field-of-view radius.
    #[must_use]
    pub fn fov_radius(&self) -> f64 {
        self.fov_radius
    }

    /// Whether a world point is inside the field of view.
    #[must_use]
    pub fn sees(&self, p: Point) -> bool {
        self.position.distance(p) <= self.fov_radius
    }

    /// Tracking quality for an object at `p`: 1 at the centre of the
    /// FOV, falling linearly to 0 at its edge (and beyond).
    #[must_use]
    pub fn quality(&self, p: Point) -> f64 {
        let d = self.position.distance(p);
        (1.0 - d / self.fov_radius).max(0.0)
    }

    /// Learned affinity for camera `other` (probability-like score
    /// that inviting them to an auction is worthwhile).
    ///
    /// # Panics
    ///
    /// Panics if `other` is out of range.
    #[must_use]
    pub fn affinity(&self, other: usize) -> f64 {
        self.affinity[other]
    }

    /// Updates affinity for `other` after an auction they were
    /// invited to: `won` is whether they took the object over.
    ///
    /// Wins reinforce strongly; losses decay gently (losing one
    /// auction usually means "the object was not near you this time",
    /// not "you are never useful" — an asymmetry Esterle-style
    /// pheromone link strengths share).
    ///
    /// # Panics
    ///
    /// Panics if `other` is out of range.
    pub fn record_auction(&mut self, other: usize, won: bool) {
        let a = &mut self.affinity[other];
        if won {
            *a += 0.3 * (1.0 - *a);
        } else {
            *a *= 0.94;
        }
        self.invites[other] += 1;
    }

    /// Times camera `other` has been invited by this one.
    #[must_use]
    pub fn invite_count(&self, other: usize) -> u64 {
        self.invites[other]
    }

    /// The full learned-affinity row (one score per camera in the
    /// network, including self). This is the camera's *model state*:
    /// supervisors snapshot it for checkpoints and restore it on
    /// rollback.
    #[must_use]
    pub fn affinities(&self) -> &[f64] {
        &self.affinity
    }

    /// Replaces the learned-affinity row wholesale (checkpoint
    /// restore, or fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `affinity` is not one score per camera.
    pub fn set_affinities(&mut self, affinity: Vec<f64>) {
        assert_eq!(
            affinity.len(),
            self.affinity.len(),
            "affinity row must cover every camera"
        );
        self.affinity = affinity;
    }

    /// The camera's ask-preference distribution over peers (excluding
    /// itself): softmax-free normalised affinities — the camera's
    /// *latent beliefs* about who wins its handovers.
    #[must_use]
    pub fn preference(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .affinity
            .iter()
            .enumerate()
            .map(|(j, &a)| if j == self.id { 0.0 } else { a.max(1e-9) })
            .collect();
        normalise(&mut v);
        v
    }

    /// The camera's *behavioural* ask distribution: the proportion of
    /// auction invitations actually sent to each peer. This — not the
    /// latent beliefs — is what the F1 heterogeneity metric compares,
    /// because a broadcast camera may *learn* distinct affinities yet
    /// still ask everyone (behaviourally homogeneous), while a
    /// self-aware camera's invitations themselves specialise. Uniform
    /// over peers until the first invitation.
    #[must_use]
    pub fn ask_distribution(&self) -> Vec<f64> {
        let total: u64 = self.invites.iter().sum();
        let n = self.invites.len();
        if total == 0 {
            let mut v = vec![1.0 / (n.max(2) - 1) as f64; n];
            v[self.id] = 0.0;
            return v;
        }
        let mut v: Vec<f64> = self.invites.iter().map(|&c| c as f64).collect();
        v[self.id] = 0.0;
        normalise(&mut v);
        v
    }
}

fn normalise(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::new(0, Point::new(0.5, 0.5), 0.2, 4)
    }

    #[test]
    fn sees_and_quality() {
        let c = cam();
        assert!(c.sees(Point::new(0.5, 0.5)));
        assert!(c.sees(Point::new(0.6, 0.5)));
        assert!(!c.sees(Point::new(0.9, 0.9)));
        assert!((c.quality(Point::new(0.5, 0.5)) - 1.0).abs() < 1e-12);
        assert!((c.quality(Point::new(0.6, 0.5)) - 0.5).abs() < 1e-9);
        assert_eq!(c.quality(Point::new(0.9, 0.9)), 0.0);
    }

    #[test]
    fn affinity_learning_moves_toward_outcomes() {
        let mut c = cam();
        assert_eq!(c.affinity(1), Camera::AFFINITY_PRIOR);
        for _ in 0..50 {
            c.record_auction(1, true);
            c.record_auction(2, false);
        }
        assert!(c.affinity(1) > 0.95);
        assert!(c.affinity(2) < 0.05);
        assert_eq!(c.invite_count(1), 50);
        assert_eq!(c.invite_count(3), 0);
    }

    #[test]
    fn preference_excludes_self_and_normalises() {
        let mut c = cam();
        c.record_auction(1, true);
        let p = c.preference();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], 0.0, "self excluded");
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > p[2]);
    }

    #[test]
    fn accessors() {
        let c = cam();
        assert_eq!(c.id(), 0);
        assert_eq!(c.fov_radius(), 0.2);
        assert_eq!(c.position(), Point::new(0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "fov radius must be positive")]
    fn zero_fov_panics() {
        let _ = Camera::new(0, Point::new(0.0, 0.0), 0.0, 2);
    }

    #[test]
    #[should_panic(expected = "camera id out of range")]
    fn bad_id_panics() {
        let _ = Camera::new(5, Point::new(0.0, 0.0), 0.1, 2);
    }
}

#[cfg(test)]
mod ask_distribution_tests {
    use super::*;

    #[test]
    fn uniform_before_any_invites() {
        let c = Camera::new(1, Point::new(0.5, 0.5), 0.2, 4);
        let d = c.ask_distribution();
        assert_eq!(d[1], 0.0);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((d[0] - d[2]).abs() < 1e-12);
    }

    #[test]
    fn reflects_actual_invitations() {
        let mut c = Camera::new(0, Point::new(0.5, 0.5), 0.2, 4);
        for _ in 0..9 {
            c.record_auction(1, false);
        }
        c.record_auction(2, true);
        let d = c.ask_distribution();
        assert!((d[1] - 0.9).abs() < 1e-9);
        assert!((d[2] - 0.1).abs() < 1e-9);
        assert_eq!(d[3], 0.0);
    }
}
