//! Camera geometry: position, field of view, tracking quality.
//!
//! The learned per-neighbour affinity state lives in
//! [`crate::affinity::AffinityTable`] (struct-of-arrays, one
//! contiguous slab for the whole network) rather than inside each
//! camera — see that module for why.

use workloads::trajectories::Point;

/// A fixed smart camera with a circular field of view.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    id: usize,
    position: Point,
    fov_radius: f64,
}

impl Camera {
    /// Creates camera `id` at `position` with `fov_radius`, in a
    /// network of `n_cameras`.
    ///
    /// # Panics
    ///
    /// Panics if `fov_radius <= 0` or `id >= n_cameras`.
    #[must_use]
    pub fn new(id: usize, position: Point, fov_radius: f64, n_cameras: usize) -> Self {
        assert!(fov_radius > 0.0, "fov radius must be positive");
        assert!(id < n_cameras, "camera id out of range");
        Self {
            id,
            position,
            fov_radius,
        }
    }

    /// Camera id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// Camera position.
    #[must_use]
    pub fn position(&self) -> Point {
        self.position
    }

    /// Field-of-view radius.
    #[must_use]
    pub fn fov_radius(&self) -> f64 {
        self.fov_radius
    }

    /// Whether a world point is inside the field of view.
    #[must_use]
    pub fn sees(&self, p: Point) -> bool {
        self.position.distance(p) <= self.fov_radius
    }

    /// Tracking quality for an object at `p`: 1 at the centre of the
    /// FOV, falling linearly to 0 at its edge (and beyond).
    #[must_use]
    pub fn quality(&self, p: Point) -> f64 {
        let d = self.position.distance(p);
        (1.0 - d / self.fov_radius).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::new(0, Point::new(0.5, 0.5), 0.2, 4)
    }

    #[test]
    fn sees_and_quality() {
        let c = cam();
        assert!(c.sees(Point::new(0.5, 0.5)));
        assert!(c.sees(Point::new(0.6, 0.5)));
        assert!(!c.sees(Point::new(0.9, 0.9)));
        assert!((c.quality(Point::new(0.5, 0.5)) - 1.0).abs() < 1e-12);
        assert!((c.quality(Point::new(0.6, 0.5)) - 0.5).abs() < 1e-9);
        assert_eq!(c.quality(Point::new(0.9, 0.9)), 0.0);
    }

    #[test]
    fn accessors() {
        let c = cam();
        assert_eq!(c.id(), 0);
        assert_eq!(c.fov_radius(), 0.2);
        assert_eq!(c.position(), Point::new(0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "fov radius must be positive")]
    fn zero_fov_panics() {
        let _ = Camera::new(0, Point::new(0.0, 0.0), 0.0, 2);
    }

    #[test]
    #[should_panic(expected = "camera id out of range")]
    fn bad_id_panics() {
        let _ = Camera::new(5, Point::new(0.0, 0.0), 0.1, 2);
    }
}
