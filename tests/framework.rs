//! Integration tests of the `selfaware` framework against a custom
//! environment: the full observe → learn → reason → act → explain loop
//! with every capability engaged, plus interaction-awareness between
//! two agents.

use selfaware::prelude::*;
use simkernel::{SeedTree, Tick};

struct Plant {
    demand: f64,
    served: f64,
}

fn goal() -> Goal {
    Goal::new("serve")
        .objective(Objective::new("demand", Direction::Minimize, 10.0, 1.0))
        .objective(Objective::new("served", Direction::Maximize, 10.0, 2.0).with_constraint(1.0))
}

fn agent(levels: LevelSet) -> SelfAwareAgent<Plant, usize> {
    let policy = UtilityPolicy::new(
        vec![(0usize, "idle".into()), (1, "serve".into())],
        Box::new(|a: &usize, kb: &KnowledgeBase| {
            let demand = kb.last_or("forecast.demand", kb.last_or("demand", 0.0));
            if *a == 1 {
                demand
            } else {
                5.0 - demand
            }
        }),
    );
    SelfAwareAgent::builder("it")
        .levels(levels)
        .sensor("demand", Scope::Public, |p: &Plant| p.demand)
        .sensor("served", Scope::Private, |p: &Plant| p.served)
        .goal(goal())
        .policy(Box::new(policy))
        .build()
        .expect("valid agent")
}

#[test]
fn full_loop_drives_sensible_behaviour() {
    let mut a = agent(LevelSet::full());
    let mut rng = SeedTree::new(1).rng("t");
    let mut serve_decisions = 0;
    for t in 0..200u64 {
        let plant = Plant {
            demand: 8.0 + (t as f64 * 0.2).sin(),
            served: 5.0,
        };
        let d = a.step(&plant, Tick(t), &mut rng);
        if d.action == 1 {
            serve_decisions += 1;
        }
        a.reward(1.0);
    }
    assert!(
        serve_decisions > 150,
        "high demand should mostly select serve ({serve_decisions}/200)"
    );
    assert!(a.utility().is_some());
    assert_eq!(a.explanations().len(), 200);
    assert_eq!(a.knowledge().absorbed_count() % 200, 0);
}

#[test]
fn forecasts_feed_decisions() {
    let mut a = agent(LevelSet::new().with(Level::Stimulus).with(Level::Time));
    let mut rng = SeedTree::new(2).rng("t");
    for t in 0..100u64 {
        let plant = Plant {
            demand: t as f64 * 0.1,
            served: 2.0,
        };
        a.step(&plant, Tick(t), &mut rng);
    }
    let raw = a.knowledge().last("demand").unwrap();
    let forecast = a.knowledge().last("forecast.demand").unwrap();
    assert!((raw - 9.9).abs() < 1e-9);
    assert!(
        (forecast - raw).abs() < 1.0,
        "forecast should track the ramp"
    );
}

#[test]
fn explanations_carry_alternatives_and_utility() {
    let mut a = agent(LevelSet::full());
    let mut rng = SeedTree::new(3).rng("t");
    a.step(
        &Plant {
            demand: 9.0,
            served: 3.0,
        },
        Tick(0),
        &mut rng,
    );
    let ex = a.explanations().latest().expect("one explanation");
    assert!(ex.expected_utility.is_some());
    assert_eq!(ex.alternatives.len(), 1, "one rejected alternative");
    let rendered = ex.to_string();
    assert!(rendered.contains("chose"));
    assert!(rendered.contains("rejected"));
}

#[test]
fn two_agents_share_knowledge_via_interaction() {
    let mut a = agent(LevelSet::full());
    let mut b = agent(LevelSet::full());
    let mut rng = SeedTree::new(4).rng("t");
    let plant = Plant {
        demand: 5.0,
        served: 2.0,
    };
    a.step(&plant, Tick(0), &mut rng);
    // Agent A tells B about its own utility (a social percept).
    let my_utility = a.utility().unwrap();
    b.tell(Percept::new(
        "peer.utility",
        my_utility,
        Scope::Public,
        Tick(0),
    ));
    assert_eq!(b.knowledge().last("peer.utility"), Some(my_utility));
}

#[test]
fn constraint_violations_visible_in_utility() {
    let mut a = agent(LevelSet::full());
    let mut rng = SeedTree::new(5).rng("t");
    // served = 0.5 violates the >= 1.0 constraint.
    a.step(
        &Plant {
            demand: 2.0,
            served: 0.5,
        },
        Tick(0),
        &mut rng,
    );
    let u_bad = a.utility().unwrap();
    a.step(
        &Plant {
            demand: 2.0,
            served: 9.0,
        },
        Tick(1),
        &mut rng,
    );
    let u_good = a.utility().unwrap();
    assert!(u_good > u_bad + 0.3, "violation should cost utility");
}

#[test]
fn workloads_plug_into_agents() {
    // An agent observing a generated workload signal end to end.
    use workloads::signal::{SignalGen, SignalSpec};
    let mut gen = SignalGen::new(
        vec![
            (0, SignalSpec::Flat { level: 3.0 }),
            (
                100,
                SignalSpec::Trend {
                    start: 3.0,
                    slope: 0.2,
                },
            ),
        ],
        0.1,
        SeedTree::new(6).rng("sig"),
    );
    let mut a = agent(LevelSet::full());
    let mut rng = SeedTree::new(6).rng("agent");
    for t in 0..200u64 {
        let plant = Plant {
            demand: gen.sample(Tick(t)),
            served: 2.0,
        };
        a.step(&plant, Tick(t), &mut rng);
        a.reward(0.5);
    }
    // After the trend regime, the forecast should be well above the
    // flat-regime level.
    assert!(a.knowledge().last("forecast.demand").unwrap() > 10.0);
}

#[test]
fn boxed_sensor_and_log_capacity_builders() {
    use selfaware::sensors::{FnSensor, Sensor};
    let sensor: Box<dyn Sensor<Plant>> =
        Box::new(FnSensor::new("demand", Scope::Public, |p: &Plant| p.demand).with_cost(2.0));
    let mut a = SelfAwareAgent::<Plant, usize>::builder("boxed")
        .levels(LevelSet::new().with(Level::Stimulus))
        .boxed_sensor(sensor)
        .log_capacity(2)
        .history(4)
        .policy(Box::new(ConstantPolicy::new(0usize, "hold")))
        .build()
        .expect("valid agent");
    let mut rng = SeedTree::new(7).rng("b");
    for t in 0..5u64 {
        a.step(
            &Plant {
                demand: t as f64,
                served: 0.0,
            },
            Tick(t),
            &mut rng,
        );
    }
    assert_eq!(a.explanations().len(), 2, "log capped at 2");
    assert_eq!(
        a.knowledge().history("demand").unwrap().len(),
        4,
        "history capped at 4"
    );
}

#[test]
fn builder_rejects_degenerate_configs() {
    use selfaware::error::SelfAwareError;
    let zero_history = SelfAwareAgent::<Plant, usize>::builder("x")
        .history(0)
        .policy(Box::new(ConstantPolicy::new(0usize, "hold")))
        .build();
    assert!(matches!(
        zero_history.unwrap_err(),
        SelfAwareError::InvalidParameter {
            name: "history",
            ..
        }
    ));
    let zero_log = SelfAwareAgent::<Plant, usize>::builder("x")
        .log_capacity(0)
        .policy(Box::new(ConstantPolicy::new(0usize, "hold")))
        .build();
    assert!(matches!(
        zero_log.unwrap_err(),
        SelfAwareError::InvalidParameter {
            name: "log_capacity",
            ..
        }
    ));
    let bad_budget = SelfAwareAgent::<Plant, usize>::builder("x")
        .sensor("demand", Scope::Public, |p: &Plant| p.demand)
        .attention_budget(0.0)
        .policy(Box::new(ConstantPolicy::new(0usize, "hold")))
        .build();
    assert!(matches!(
        bad_budget.unwrap_err(),
        SelfAwareError::InvalidParameter {
            name: "attention_budget",
            ..
        }
    ));
}

#[test]
fn architecture_introspection_of_live_agent() {
    use selfaware::architecture::{describe, is_sound, validate};
    let mut a = agent(LevelSet::full());
    let mut rng = SeedTree::new(11).rng("arch");
    a.step(
        &Plant {
            demand: 1.0,
            served: 1.0,
        },
        Tick(0),
        &mut rng,
    );
    let desc = describe(&a);
    assert!(desc.has_goal);
    assert_eq!(desc.levels.len(), 5);
    let findings = validate(a.levels(), true, true, false);
    assert!(is_sound(&findings));
}
