//! Cross-crate integration tests of the paper's central hypothesis:
//! *"systems that engage in self-awareness can better manage
//! trade-offs between goals at run time, in complex, uncertain and
//! dynamic environments"* — checked in all four case-study domains.
//!
//! Scales are reduced relative to the benchmark harness; assertions
//! are majority-of-seeds to keep them robust without rigging.

use selfaware::levels::LevelSet;
use simkernel::SeedTree;

#[test]
fn cloud_self_aware_wins_composite_utility() {
    let mut wins = 0;
    for seed in 0..3u64 {
        let seeds = SeedTree::new(seed);
        let sa = cloudsim::run_scenario(
            &cloudsim::ScenarioConfig::standard(
                cloudsim::Strategy::SelfAware {
                    levels: LevelSet::full(),
                },
                3000,
                &seeds,
            ),
            &seeds,
        );
        let rr = cloudsim::run_scenario(
            &cloudsim::ScenarioConfig::standard(cloudsim::Strategy::RoundRobin, 3000, &seeds),
            &seeds,
        );
        if sa.metrics.get("utility") > rr.metrics.get("utility") {
            wins += 1;
        }
    }
    assert!(wins >= 2, "self-aware beat round-robin on {wins}/3 seeds");
}

#[test]
fn cloud_self_aware_cuts_cost_without_losing_completion() {
    let seeds = SeedTree::new(11);
    let sa = cloudsim::run_scenario(
        &cloudsim::ScenarioConfig::standard(
            cloudsim::Strategy::SelfAware {
                levels: LevelSet::full(),
            },
            4000,
            &seeds,
        ),
        &seeds,
    );
    let ll = cloudsim::run_scenario(
        &cloudsim::ScenarioConfig::standard(cloudsim::Strategy::LeastLoaded, 4000, &seeds),
        &seeds,
    );
    assert!(
        sa.metrics.get("cost_ratio").unwrap() < ll.metrics.get("cost_ratio").unwrap() - 0.05,
        "autoscaling should rent materially less"
    );
    assert!(
        sa.metrics.get("completion_ratio").unwrap()
            > ll.metrics.get("completion_ratio").unwrap() - 0.05,
        "without sacrificing completions"
    );
}

#[test]
fn camnet_self_aware_matches_broadcast_quality_at_lower_cost() {
    let mut wins = 0;
    for seed in 0..3u64 {
        let seeds = SeedTree::new(seed);
        let bc = camnet::run_camnet(
            &camnet::CamnetConfig::standard(camnet::HandoverStrategy::Broadcast, 4000),
            &seeds,
        );
        let sa = camnet::run_camnet(
            &camnet::CamnetConfig::standard(camnet::HandoverStrategy::self_aware_default(), 4000),
            &seeds,
        );
        let q_ok = sa.metrics.get("track_quality").unwrap()
            > 0.8 * bc.metrics.get("track_quality").unwrap();
        let m_ok = sa.metrics.get("messages_per_tick").unwrap()
            < 0.8 * bc.metrics.get("messages_per_tick").unwrap();
        if q_ok && m_ok {
            wins += 1;
        }
    }
    assert!(wins >= 2, "passed on {wins}/3 seeds");
}

#[test]
fn camnet_heterogeneity_emerges_only_when_learning() {
    let seeds = SeedTree::new(5);
    let sa = camnet::run_camnet(
        &camnet::CamnetConfig::standard(camnet::HandoverStrategy::self_aware_default(), 4000),
        &seeds,
    );
    let bc = camnet::run_camnet(
        &camnet::CamnetConfig::standard(camnet::HandoverStrategy::Broadcast, 4000),
        &seeds,
    );
    // Behavioural divergence: self-aware cameras specialise, broadcast
    // cameras stay (near) uniform.
    assert!(
        sa.metrics.get("heterogeneity_final").unwrap()
            > 2.0 * bc.metrics.get("heterogeneity_final").unwrap(),
    );
    // And it grows over the run for the learners.
    let pts = sa.heterogeneity.points();
    let early = pts[1].1;
    let late = pts.last().unwrap().1;
    assert!(late > early);
}

#[test]
fn cpn_adaptive_routing_absorbs_dos() {
    let mut wins = 0;
    for seed in 0..3u64 {
        let seeds = SeedTree::new(seed);
        let stat = cpn::run_cpn(
            &cpn::CpnConfig::standard(cpn::RoutingStrategy::StaticShortest, 2400),
            &seeds,
        );
        let smart = cpn::run_cpn(
            &cpn::CpnConfig::standard(cpn::RoutingStrategy::cpn_default(), 2400),
            &seeds,
        );
        if smart.metrics.get("delay_attack").unwrap()
            < 0.5 * stat.metrics.get("delay_attack").unwrap()
        {
            wins += 1;
        }
    }
    assert!(wins >= 2, "cpn halved attack delay on {wins}/3 seeds");
}

#[test]
fn multicore_self_aware_cuts_energy_and_avoids_throttling() {
    let mut wins = 0;
    for seed in 0..3u64 {
        let seeds = SeedTree::new(seed);
        let sa = multicore::run_multicore(
            &multicore::MulticoreConfig::standard(multicore::Scheduler::SelfAware, 2400),
            &seeds,
        );
        let greedy = multicore::run_multicore(
            &multicore::MulticoreConfig::standard(multicore::Scheduler::Greedy, 2400),
            &seeds,
        );
        let e_ok = sa.metrics.get("energy_per_task").unwrap()
            < greedy.metrics.get("energy_per_task").unwrap();
        let t_ok = sa.metrics.get("throttle_ratio").unwrap()
            <= greedy.metrics.get("throttle_ratio").unwrap() + 1e-9;
        if e_ok && t_ok {
            wins += 1;
        }
    }
    assert!(wins >= 2, "passed on {wins}/3 seeds");
}

#[test]
fn collective_awareness_needs_no_global_component() {
    use selfaware::collective::{centralized_estimate, GossipNetwork};
    let seeds = SeedTree::new(9);
    let mut rng = seeds.rng("obs");
    use rand::Rng as _;
    let obs: Vec<f64> = (0..128).map(|_| 50.0 + rng.gen_range(-5.0..5.0)).collect();
    let mean = obs.iter().sum::<f64>() / obs.len() as f64;
    let central = centralized_estimate(&obs);
    let mut gossip = GossipNetwork::new(obs);
    let mut grng = seeds.rng("gossip");
    gossip.run(30, &mut grng);
    let g = gossip.outcome();
    // Comparable accuracy...
    assert!(g.max_abs_error(mean) < 0.5);
    assert_eq!(central.mean_abs_error(mean), 0.0);
    // ...with no hot spot.
    assert!(g.max_node_load < central.max_node_load / 2);
}
