//! Reproducibility contract: every simulator in the workspace is a
//! pure function of (config, seed). These tests protect the property
//! the whole evaluation rests on.

use selfaware::levels::LevelSet;
use simkernel::SeedTree;

fn cloud_metrics(seed: u64) -> simkernel::MetricSet {
    let seeds = SeedTree::new(seed);
    let cfg = cloudsim::ScenarioConfig::standard(
        cloudsim::Strategy::SelfAware {
            levels: LevelSet::full(),
        },
        1200,
        &seeds,
    );
    cloudsim::run_scenario(&cfg, &seeds).metrics
}

#[test]
fn cloud_is_deterministic_and_seed_sensitive() {
    assert_eq!(cloud_metrics(1), cloud_metrics(1));
    assert_ne!(cloud_metrics(1), cloud_metrics(2));
}

fn camnet_metrics(seed: u64) -> simkernel::MetricSet {
    camnet::run_camnet(
        &camnet::CamnetConfig::standard(camnet::HandoverStrategy::self_aware_default(), 1200),
        &SeedTree::new(seed),
    )
    .metrics
}

#[test]
fn camnet_is_deterministic_and_seed_sensitive() {
    assert_eq!(camnet_metrics(3), camnet_metrics(3));
    assert_ne!(camnet_metrics(3), camnet_metrics(4));
}

fn cpn_metrics(seed: u64) -> simkernel::MetricSet {
    cpn::run_cpn(
        &cpn::CpnConfig::standard(cpn::RoutingStrategy::cpn_default(), 1200),
        &SeedTree::new(seed),
    )
    .metrics
}

#[test]
fn cpn_is_deterministic_and_seed_sensitive() {
    assert_eq!(cpn_metrics(5), cpn_metrics(5));
    assert_ne!(cpn_metrics(5), cpn_metrics(6));
}

fn multicore_metrics(seed: u64) -> simkernel::MetricSet {
    multicore::run_multicore(
        &multicore::MulticoreConfig::standard(multicore::Scheduler::SelfAware, 1200),
        &SeedTree::new(seed),
    )
    .metrics
}

#[test]
fn multicore_is_deterministic_and_seed_sensitive() {
    assert_eq!(multicore_metrics(7), multicore_metrics(7));
    assert_ne!(multicore_metrics(7), multicore_metrics(8));
}

#[test]
fn replication_runner_uses_common_random_numbers() {
    // Replicate k's seed tree is independent of the strategy being
    // run — the foundation of the paired comparisons in the benches.
    let reps = simkernel::Replications::new(99, 4);
    for k in 0..4 {
        assert_eq!(reps.seeds_for(k).raw(), reps.seeds_for(k).raw());
    }
    let other = simkernel::Replications::new(99, 8);
    assert_eq!(reps.seeds_for(2).raw(), other.seeds_for(2).raw());
}

#[test]
fn experiment_harness_is_deterministic() {
    let a = sas_bench::run_t5(2).to_string();
    let b = sas_bench::run_t5(2).to_string();
    assert_eq!(a, b);
}
