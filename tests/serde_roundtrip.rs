//! Serde round-trip tests for the workspace's data-structure types
//! (Rust API guideline C-SERDE): configurations, percepts,
//! explanations and model state survive serialisation, so experiments
//! and agent snapshots can be persisted and replayed.

use selfaware::explain::Explanation;
use selfaware::goals::{Direction, Goal, Objective};
use selfaware::levels::{Level, LevelSet};
use selfaware::models::ewma::Ewma;
use selfaware::models::holt::Holt;
use selfaware::models::qlearn::QLearner;
use selfaware::models::{Forecaster, OnlineModel};
use selfaware::sensors::{Percept, Scope};
use simkernel::Tick;

// No serialisation-format crate (serde_json/bincode/...) is in the
// allowed dependency set, so these tests pin the C-SERDE contract at
// compile time (every data type implements the traits) and verify the
// snapshot semantics the impls must preserve via clone-equivalence.

fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

#[test]
fn data_types_implement_serde() {
    // Compile-time verification of C-SERDE across the workspace.
    assert_serde::<Percept>();
    assert_serde::<Scope>();
    assert_serde::<Level>();
    assert_serde::<LevelSet>();
    assert_serde::<Goal>();
    assert_serde::<Objective>();
    assert_serde::<Direction>();
    assert_serde::<Explanation>();
    assert_serde::<Ewma>();
    assert_serde::<Holt>();
    assert_serde::<QLearner>();
    assert_serde::<Tick>();
    assert_serde::<simkernel::TimeSeries>();
    assert_serde::<simkernel::OnlineStats>();
    assert_serde::<workloads::Disturbance>();
    assert_serde::<workloads::Schedule>();
    assert_serde::<workloads::TaskMix>();
    assert_serde::<workloads::FlowSpec>();
    assert_serde::<workloads::TrafficMatrix>();
    assert_serde::<cloudsim::NodeSpec>();
    assert_serde::<cloudsim::Request>();
    assert_serde::<cloudsim::RequestOutcome>();
    assert_serde::<multicore::CoreSpec>();
    assert_serde::<multicore::DvfsLevel>();
}

#[test]
fn model_state_survives_clone_based_snapshot() {
    // Snapshot semantics the serde impls must preserve: a cloned
    // (≈ serialised+restored) model continues identically.
    let mut original = Holt::new(0.4, 0.2);
    for t in 0..50 {
        original.observe(t as f64 * 1.5);
    }
    let mut restored = original.clone();
    assert_eq!(original.forecast(), restored.forecast());
    original.observe(100.0);
    restored.observe(100.0);
    assert_eq!(original.forecast(), restored.forecast());
    assert_eq!(original.observations(), restored.observations());
}

#[test]
fn qlearner_snapshot_preserves_policy() {
    let mut q = QLearner::new(3, 2, 0.3, 0.5, 0.1);
    for i in 0..200u64 {
        let s = (i % 3) as usize;
        q.update(
            s,
            (i % 2) as usize,
            (i % 5) as f64 / 5.0,
            ((i + 1) % 3) as usize,
        );
    }
    let snapshot = q.clone();
    for s in 0..3 {
        assert_eq!(q.greedy(s), snapshot.greedy(s));
        for a in 0..2 {
            assert_eq!(q.q_value(s, a), snapshot.q_value(s, a));
        }
    }
}

#[test]
fn send_sync_bounds_hold() {
    // C-SEND-SYNC: the long-lived framework types must cross threads.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Percept>();
    assert_send_sync::<Goal>();
    assert_send_sync::<LevelSet>();
    assert_send_sync::<Explanation>();
    assert_send_sync::<Ewma>();
    assert_send_sync::<QLearner>();
    assert_send_sync::<selfaware::knowledge::KnowledgeBase>();
    assert_send_sync::<simkernel::SeedTree>();
    assert_send_sync::<cloudsim::Cluster>();
    assert_send_sync::<cpn::Graph>();
}
