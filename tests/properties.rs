//! Property-based tests (proptest) on the core invariants of the
//! framework and kernel.

use proptest::prelude::*;
use selfaware::goals::{dominates, pareto_front, Direction, Goal, Objective};
use selfaware::levels::{Level, LevelSet};
use selfaware::models::bandit::softmax;
use selfaware::models::ewma::Ewma;
use selfaware::models::{Forecaster, OnlineModel};
use simkernel::rng::{fnv1a, SeedTree};
use simkernel::stats::OnlineStats;
use simkernel::Tick;

fn level_strategy() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Stimulus),
        Just(Level::Interaction),
        Just(Level::Time),
        Just(Level::Goal),
        Just(Level::Meta),
    ]
}

proptest! {
    // ---- simkernel ----

    #[test]
    fn welford_mean_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s: OnlineStats = xs.iter().copied().collect();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean() >= lo - 1e-6 && s.mean() <= hi + 1e-6);
        prop_assert!(s.sample_variance() >= 0.0);
        prop_assert_eq!(s.count(), xs.len() as u64);
        prop_assert_eq!(s.min(), lo);
        prop_assert_eq!(s.max(), hi);
    }

    #[test]
    fn welford_merge_associates(
        a in proptest::collection::vec(-1e3f64..1e3, 0..50),
        b in proptest::collection::vec(-1e3f64..1e3, 0..50),
    ) {
        let mut merged: OnlineStats = a.iter().copied().collect();
        let sb: OnlineStats = b.iter().copied().collect();
        merged.merge(&sb);
        let all: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), all.count());
        prop_assert!((merged.mean() - all.mean()).abs() < 1e-6);
    }

    #[test]
    fn seed_tree_is_label_stable(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let a = SeedTree::new(seed).child(&label).raw();
        let b = SeedTree::new(seed).child(&label).raw();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fnv_differs_on_append(s in "[a-z]{0,16}") {
        let extended = format!("{s}x");
        prop_assert_ne!(fnv1a(s.as_bytes()), fnv1a(extended.as_bytes()));
    }

    #[test]
    fn tick_sub_never_underflows(a in any::<u64>(), b in any::<u64>()) {
        let d = Tick(a) - Tick(b);
        prop_assert!(d.value() <= a);
    }

    // ---- goals ----

    #[test]
    fn objective_score_is_bounded(
        value in -1e9f64..1e9,
        scale in 1e-3f64..1e6,
        maximize in any::<bool>(),
    ) {
        let dir = if maximize { Direction::Maximize } else { Direction::Minimize };
        let o = Objective::new("x", dir, scale, 1.0);
        let s = o.score(value);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn objective_score_is_monotone(
        a in -1e3f64..1e3,
        delta in 0.0f64..1e3,
        scale in 1e-2f64..1e3,
    ) {
        let max = Objective::new("x", Direction::Maximize, scale, 1.0);
        prop_assert!(max.score(a + delta) >= max.score(a));
        let min = Objective::new("x", Direction::Minimize, scale, 1.0);
        prop_assert!(min.score(a + delta) <= min.score(a));
    }

    #[test]
    fn utility_bounded_without_constraints(
        v1 in -1e3f64..1e3,
        v2 in -1e3f64..1e3,
        w1 in 0.1f64..10.0,
        w2 in 0.1f64..10.0,
    ) {
        let g = Goal::new("g")
            .objective(Objective::new("a", Direction::Maximize, 10.0, w1))
            .objective(Objective::new("b", Direction::Minimize, 10.0, w2));
        let u = g.utility(|k| if k == "a" { Some(v1) } else { Some(v2) });
        prop_assert!((0.0..=1.0).contains(&u), "utility {u} out of bounds");
    }

    #[test]
    fn dominance_is_asymmetric(
        a in proptest::collection::vec(-100.0f64..100.0, 3),
        b in proptest::collection::vec(-100.0f64..100.0, 3),
    ) {
        let dirs = [Direction::Maximize, Direction::Minimize, Direction::Maximize];
        prop_assert!(!(dominates(&a, &b, &dirs) && dominates(&b, &a, &dirs)));
        prop_assert!(!dominates(&a, &a, &dirs), "no self-domination");
    }

    #[test]
    fn pareto_front_is_nonempty_and_mutually_nondominated(
        pts in proptest::collection::vec(proptest::collection::vec(-50.0f64..50.0, 2), 1..24),
    ) {
        let dirs = [Direction::Maximize, Direction::Maximize];
        let front = pareto_front(&pts, &dirs);
        prop_assert!(!front.is_empty());
        for &i in &front {
            for &j in &front {
                if i != j {
                    prop_assert!(!dominates(&pts[i], &pts[j], &dirs));
                }
            }
        }
    }

    // ---- levels ----

    #[test]
    fn levelset_with_contains(levels in proptest::collection::vec(level_strategy(), 0..5)) {
        let set: LevelSet = levels.iter().copied().collect();
        for l in &levels {
            prop_assert!(set.contains(*l));
        }
        prop_assert!(set.count() <= 5);
        prop_assert!(LevelSet::full().is_superset_of(set));
        prop_assert!(set.is_superset_of(LevelSet::new()));
    }

    #[test]
    fn levelset_without_removes(l in level_strategy()) {
        let set = LevelSet::full().without(l);
        prop_assert!(!set.contains(l));
        prop_assert_eq!(set.count(), 4);
    }

    // ---- models ----

    #[test]
    fn ewma_level_stays_within_observed_range(
        alpha in 0.01f64..1.0,
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut m = Ewma::new(alpha);
        for &x in &xs {
            m.observe(x);
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let f = m.forecast().unwrap();
        prop_assert!(f >= lo - 1e-9 && f <= hi + 1e-9);
    }

    #[test]
    fn softmax_is_distribution(vals in proptest::collection::vec(-50.0f64..50.0, 1..16)) {
        let p = softmax(&vals, 1.0);
        prop_assert_eq!(p.len(), vals.len());
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }

    // ---- collective ----

    #[test]
    fn gossip_conserves_mean(
        init in proptest::collection::vec(-100.0f64..100.0, 2..32),
        rounds in 1u32..20,
        seed in any::<u64>(),
    ) {
        use selfaware::collective::GossipNetwork;
        let before = init.iter().sum::<f64>() / init.len() as f64;
        let mut g = GossipNetwork::new(init);
        let mut rng = SeedTree::new(seed).rng("gossip");
        let spread_before = g.spread();
        g.run(rounds, &mut rng);
        let after = g.values().iter().sum::<f64>() / g.len() as f64;
        prop_assert!((before - after).abs() < 1e-9, "gossip must conserve the mean");
        prop_assert!(g.spread() <= spread_before + 1e-9, "spread never grows");
    }

    // ---- workloads ----

    #[test]
    fn schedule_apply_is_nonnegative(
        base in 0.0f64..100.0,
        offset in -200.0f64..200.0,
        at in 0u64..1000,
        t in 0u64..2000,
    ) {
        use workloads::{Disturbance, Schedule};
        let s = Schedule::new(vec![Disturbance::step(Tick(at), offset)]);
        prop_assert!(s.apply(base, Tick(t)) >= 0.0);
    }

    #[test]
    fn poisson_is_reasonable(lambda in 0.0f64..50.0, seed in any::<u64>()) {
        let mut rng = SeedTree::new(seed).rng("p");
        let x = workloads::rates::poisson(lambda, &mut rng);
        // Crude tail bound: far beyond mean + 10 sqrt(mean) is a bug.
        prop_assert!((f64::from(x)) < lambda + 10.0 * lambda.sqrt() + 10.0);
    }
}
