//! Cognitive packet network scenario: routing under a router-targeting
//! denial-of-service attack (paper Section III, refs [38], [39]).
//!
//! Run with: `cargo run --release --example attack_routing`

use cpn::{run_cpn, CpnConfig, RoutingStrategy};
use simkernel::series::render_multi;
use simkernel::table::num;
use simkernel::{SeedTree, Table};

fn main() {
    let steps = 3_000;
    let strategies = [
        RoutingStrategy::StaticShortest,
        RoutingStrategy::Periodic { period: 50 },
        RoutingStrategy::cpn_default(),
    ];
    let (from, to) = CpnConfig::attack_window(steps);

    let mut table = Table::new(
        format!("routing under DoS (attack {from}..{to})"),
        &[
            "strategy",
            "delivery",
            "delay pre",
            "delay attack",
            "delay post",
        ],
    );
    let mut series = Vec::new();
    for strategy in strategies {
        let result = run_cpn(&CpnConfig::standard(strategy, steps), &SeedTree::new(3));
        let m = &result.metrics;
        table.row_owned(vec![
            strategy.label(),
            num(m.get("delivery_ratio").unwrap_or(0.0)),
            num(m.get("delay_pre").unwrap_or(0.0)),
            num(m.get("delay_attack").unwrap_or(0.0)),
            num(m.get("delay_post").unwrap_or(0.0)),
        ]);
        series.push(result.delay);
    }
    println!("{table}");
    println!("End-to-end delay over time (attack in the middle third):");
    let refs: Vec<&simkernel::TimeSeries> = series.iter().collect();
    println!("{}", render_multi(&refs, 30));
    println!(
        "\nCPN's per-hop reinforcement (the paper's 'simple learning scheme')\n\
         detours around the pinned routers within a few dozen ticks; the\n\
         design-time shortest paths queue into the attack for its whole\n\
         duration."
    );
}
