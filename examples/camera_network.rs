//! Smart-camera network scenario: market-based tracking handover, and
//! the emergence of heterogeneity among learning cameras (paper
//! Section II and ref [13], "Learning to be different").
//!
//! Run with: `cargo run --release --example camera_network`

use camnet::{run_camnet, CamnetConfig, HandoverStrategy};
use simkernel::series::render_multi;
use simkernel::table::num;
use simkernel::{SeedTree, Table};

fn main() {
    let steps = 6_000;
    let strategies = [
        HandoverStrategy::Broadcast,
        HandoverStrategy::Smooth { k: 3 },
        HandoverStrategy::Static { k: 3 },
        HandoverStrategy::self_aware_default(),
    ];

    let mut table = Table::new(
        "camera handover: tracking quality vs communication (6k ticks)",
        &[
            "strategy",
            "quality",
            "untracked",
            "msgs/tick",
            "ask ratio",
            "diversity",
            "utility",
        ],
    );
    let mut series = Vec::new();
    for strategy in strategies {
        let result = run_camnet(&CamnetConfig::standard(strategy, steps), &SeedTree::new(7));
        let m = &result.metrics;
        table.row_owned(vec![
            strategy.label(),
            num(m.get("track_quality").unwrap_or(0.0)),
            num(m.get("untracked_ratio").unwrap_or(0.0)),
            num(m.get("messages_per_tick").unwrap_or(0.0)),
            num(m.get("ask_ratio").unwrap_or(0.0)),
            num(m.get("heterogeneity_final").unwrap_or(0.0)),
            num(m.get("utility").unwrap_or(0.0)),
        ]);
        series.push(result.heterogeneity);
    }
    println!("{table}");
    println!("Heterogeneity (policy divergence) over time — self-aware cameras diverge:");
    let refs: Vec<&simkernel::TimeSeries> = series.iter().collect();
    println!("{}", render_multi(&refs, 24));
}
