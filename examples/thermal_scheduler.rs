//! Heterogeneous multicore scenario: a design-time-pinned scheduler, a
//! greedy scheduler, and the self-aware scheduler (learned task
//! mapping + thermal-forecast DVFS) on a workload whose phase mix the
//! designer never anticipated (paper Section III, refs [8], [16],
//! [47]).
//!
//! Run with: `cargo run --release --example thermal_scheduler`

use multicore::{run_multicore, MulticoreConfig, Scheduler};
use simkernel::series::render_multi;
use simkernel::table::num;
use simkernel::{SeedTree, Table};

fn main() {
    let steps = 3_000;
    let mut table = Table::new(
        "big.LITTLE scheduling across workload phases (3k ticks)",
        &[
            "scheduler",
            "completion",
            "mean lat",
            "miss rate",
            "energy/task",
            "throttle",
            "peak temp",
            "utility",
        ],
    );
    let mut series = Vec::new();
    for scheduler in [
        Scheduler::StaticPin,
        Scheduler::Greedy,
        Scheduler::SelfAware,
    ] {
        let result = run_multicore(
            &MulticoreConfig::standard(scheduler, steps),
            &SeedTree::new(12),
        );
        let m = &result.metrics;
        table.row_owned(vec![
            scheduler.label().to_string(),
            num(m.get("completion_ratio").unwrap_or(0.0)),
            num(m.get("mean_latency").unwrap_or(0.0)),
            num(m.get("deadline_miss_rate").unwrap_or(0.0)),
            num(m.get("energy_per_task").unwrap_or(0.0)),
            num(m.get("throttle_ratio").unwrap_or(0.0)),
            num(m.get("peak_temp").unwrap_or(0.0)),
            num(m.get("utility").unwrap_or(0.0)),
        ]);
        series.push(result.peak_temp);
    }
    println!("{table}");
    println!("peak junction temperature over time (cap = 85 °C):");
    let refs: Vec<&simkernel::TimeSeries> = series.iter().collect();
    println!("{}", render_multi(&refs, 30));
    println!(
        "The self-aware scheduler's Holt forecaster sees the thermal ceiling\n\
         coming and downclocks *before* the hardware throttle would fire, while\n\
         its Q-learned class→cluster map keeps memory-bound work on the little\n\
         cores where it costs a quarter of the energy."
    );
}
