//! Self-prediction (Kounev's sense, paper Section III): an agent that
//! learns action→outcome self-models online and then *plans* — it
//! scores each candidate action by the counterfactual utility of its
//! predicted consequences, Winfield's "internal model used to moderate
//! actions" in miniature.
//!
//! Run with: `cargo run --release --example whatif_planner`

use selfaware::goals::{Direction, Goal, Objective};
use selfaware::knowledge::KnowledgeBase;
use selfaware::sensors::{Percept, Scope};
use selfaware::whatif::{utility_with, ActionEffectModel};
use simkernel::{SeedTree, Tick};

/// The hidden world: latency and energy response of three service
/// tiers under load (the agent never sees these equations — it has to
/// learn them from experience).
fn world(tier: usize, load: f64, noise: f64) -> (f64, f64) {
    let latency = match tier {
        0 => 4.0 + 16.0 * load, // single instance: cheap, melts under load
        1 => 3.0 + 6.0 * load,  // small pool
        _ => 2.0 + 1.5 * load,  // large pool: flat latency, pricey
    } + noise;
    let energy = match tier {
        0 => 1.0,
        1 => 2.5,
        _ => 6.0,
    };
    (latency, energy)
}

fn main() {
    let goal = Goal::new("latency-vs-energy")
        .objective(Objective::new("latency", Direction::Minimize, 20.0, 2.0).with_constraint(15.0))
        .objective(Objective::new("energy", Direction::Minimize, 8.0, 1.0));

    let mut latency_model = ActionEffectModel::new(3, 2);
    let mut energy_model = ActionEffectModel::new(3, 2);
    let mut kb = KnowledgeBase::new(64);
    let mut rng = SeedTree::new(9).rng("planner");
    use rand::Rng as _;

    println!("phase 1: exploration — learning what each tier does to latency & energy");
    for t in 0..120u64 {
        let load = rng.gen_range(0.0..1.0);
        let tier = (t % 3) as usize; // round-robin experimentation
        let (lat, en) = world(tier, load, rng.gen_range(-0.3..0.3));
        latency_model.observe(tier, &[load, 1.0], lat);
        energy_model.observe(tier, &[load, 1.0], en);
        kb.absorb(&Percept::new("latency", lat, Scope::Public, Tick(t)));
        kb.absorb(&Percept::new("energy", en, Scope::Private, Tick(t)));
    }
    println!(
        "  learned {} observations per tier\n",
        latency_model.observations(0)
    );

    println!("phase 2: planning — choose the tier whose PREDICTED outcome maximises utility");
    println!("load   predicted U(tier0/tier1/tier2)    chosen  actual latency  within SLA?");
    for &load in &[0.1, 0.3, 0.5, 0.7, 0.9] {
        let scores: Vec<f64> = (0..3)
            .map(|tier| {
                let lat = latency_model
                    .predict(tier, &[load, 1.0])
                    .expect("warm model");
                let en = energy_model
                    .predict(tier, &[load, 1.0])
                    .expect("warm model");
                utility_with(&goal, &kb, &[("latency", lat), ("energy", en)])
            })
            .collect();
        let best = (0..3)
            .max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite"))
            .expect("three tiers");
        let (actual_lat, _) = world(best, load, 0.0);
        println!(
            "{load:.1}    {:+.3} / {:+.3} / {:+.3}        tier{best}   {actual_lat:>6.1}          {}",
            scores[0],
            scores[1],
            scores[2],
            if actual_lat <= 15.0 { "yes" } else { "NO" },
        );
    }
    println!(
        "\nAt light load the planner stays on the cheaper tiers; as predicted\n\
         latency approaches the 15-tick SLA constraint it escalates — trading\n\
         energy for latency *before* violating, on the strength of its own\n\
         learned self-model."
    );
}
