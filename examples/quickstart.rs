//! Quickstart: build a full-stack self-aware agent and watch it manage
//! a trade-off at run time.
//!
//! The scenario is the paper's motivating situation in miniature: a
//! service faces drifting demand and must trade performance against
//! cost, with no design-time model of the demand process. The agent
//! senses demand (public self-awareness) and its own backlog (private
//! self-awareness), forecasts both, evaluates a two-objective goal and
//! explains every decision it takes.
//!
//! Run with: `cargo run --example quickstart`

use selfaware::prelude::*;
use simkernel::{SeedTree, Tick};

/// The environment: a service with external demand and an internal
/// backlog, served at a rate chosen by the agent.
struct Service {
    demand: f64,
    backlog: f64,
    capacity: f64,
}

impl Service {
    fn step(&mut self, t: u64) {
        // Diurnal demand with a mid-run regime shift the designer did
        // not anticipate.
        let base = 4.0 + 2.0 * (t as f64 / 40.0).sin();
        self.demand = if t > 120 { base * 1.8 } else { base };
        self.backlog = (self.backlog + self.demand - self.capacity).max(0.0);
    }
}

fn main() -> Result<(), SelfAwareError> {
    // Stakeholder concerns as run-time objects: keep the backlog low,
    // spend as little capacity as possible.
    let goal = Goal::new("serve-cheaply")
        .objective(Objective::new("backlog", Direction::Minimize, 20.0, 2.0))
        .objective(Objective::new(
            "self.capacity",
            Direction::Minimize,
            12.0,
            1.0,
        ));

    // Actions: capacity settings.
    let capacities = [2.0, 6.0, 12.0];
    let actions: Vec<(usize, String)> = capacities
        .iter()
        .enumerate()
        .map(|(i, c)| (i, format!("capacity={c}")))
        .collect();

    // Goal-aware policy: score each capacity against the *forecast*
    // demand, not just the current one (time awareness in action).
    let policy = UtilityPolicy::new(
        actions,
        Box::new(move |a: &usize, kb: &KnowledgeBase| {
            let expected_demand = kb.last_or("forecast5.demand", kb.last_or("demand", 4.0));
            let backlog = kb.last_or("backlog", 0.0);
            let cap = capacities[*a];
            let drain = cap - expected_demand;
            let backlog_score = (1.0 + (backlog / 10.0 - drain)).max(0.0);
            let cost_score = cap / 12.0;
            -(2.0 * backlog_score + cost_score)
        }),
    );

    let mut agent = SelfAwareAgent::builder("quickstart")
        .levels(LevelSet::full())
        .sensor("demand", Scope::Public, |s: &Service| s.demand)
        .sensor("backlog", Scope::Private, |s: &Service| s.backlog)
        .sensor("self.capacity", Scope::Private, |s: &Service| s.capacity)
        .goal(goal)
        .policy(Box::new(policy))
        .build()?;

    let mut service = Service {
        demand: 4.0,
        backlog: 0.0,
        capacity: 6.0,
    };
    let mut rng = SeedTree::new(42).rng("quickstart");

    println!("tick  demand  backlog  capacity  utility  decision");
    for t in 0..240u64 {
        service.step(t);
        let decision = agent.step(&service, Tick(t), &mut rng);
        service.capacity = [2.0, 6.0, 12.0][decision.action];
        let utility = agent.utility().unwrap_or(0.0);
        agent.reward(utility);
        if t % 20 == 0 {
            println!(
                "{t:>4}  {:>6.2}  {:>7.2}  {:>8.1}  {utility:>7.3}  {}",
                service.demand, service.backlog, service.capacity, decision.label
            );
        }
    }

    println!("\nThe agent can explain itself (paper: self-explanation):");
    if let Some(explanation) = agent.explanations().latest() {
        println!("  {explanation}");
    }
    println!(
        "\nLevels possessed: {} | steps: {} | signals tracked: {}",
        agent.levels(),
        agent.steps(),
        agent.knowledge().signal_count()
    );
    Ok(())
}
