//! Volunteer-cloud scenario: compare non-self-aware dispatchers with
//! the full self-aware controller on the paper's central trade-off —
//! QoS versus cost under churn and drifting demand.
//!
//! Run with: `cargo run --release --example cloud_autoscaler`

use cloudsim::{run_scenario, ScenarioConfig, Strategy};
use selfaware::levels::LevelSet;
use simkernel::table::num;
use simkernel::{SeedTree, Table};

fn main() {
    let steps = 6_000;
    let seeds = SeedTree::new(2024);
    let strategies = [
        Strategy::Random,
        Strategy::RoundRobin,
        Strategy::LeastLoaded,
        Strategy::SelfAware {
            levels: LevelSet::full(),
        },
    ];

    let mut table = Table::new(
        "cloud autoscaling: QoS vs cost under churn (6k ticks, 1 seed)",
        &[
            "strategy",
            "completion",
            "violations",
            "p95 latency",
            "cost",
            "utility",
        ],
    );
    for strategy in strategies {
        let cfg = ScenarioConfig::standard(strategy.clone(), steps, &seeds);
        let result = run_scenario(&cfg, &seeds);
        let m = &result.metrics;
        table.row_owned(vec![
            strategy.label(),
            num(m.get("completion_ratio").unwrap_or(0.0)),
            num(m.get("violation_rate").unwrap_or(0.0)),
            num(m.get("p95_latency").unwrap_or(0.0)),
            num(m.get("cost_ratio").unwrap_or(0.0)),
            num(m.get("utility").unwrap_or(0.0)),
        ]);
    }
    println!("{table}");
    println!(
        "The self-aware controller rents capacity from a demand forecast and\n\
         learns per-node reliability, so it serves comparably to least-loaded\n\
         while renting a fraction of the pool — the paper's claim that\n\
         self-awareness improves run-time trade-off management."
    );
}
