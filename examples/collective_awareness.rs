//! Collective self-awareness without a global component (paper
//! Section IV, concept 3): a decentralised network of nodes converges
//! on global knowledge by gossip alone, keeps re-converging as the
//! world changes, and never routes everything through one hot spot.
//!
//! Run with: `cargo run --release --example collective_awareness`

use selfaware::collective::{
    centralized_estimate, hierarchical_estimate, GossipNetwork, Reobservation,
};
use simkernel::table::num;
use simkernel::{SeedTree, Table, Tick};

fn main() {
    let seeds = SeedTree::new(77);
    let mut rng = seeds.rng("observations");
    use rand::Rng as _;

    // 64 nodes each observe a global quantity (say, ambient load = 40)
    // with local noise.
    let truth = 40.0;
    let obs: Vec<f64> = (0..64).map(|_| truth + rng.gen_range(-4.0..4.0)).collect();
    let sample_mean = obs.iter().sum::<f64>() / obs.len() as f64;

    let central = centralized_estimate(&obs);
    let hier = hierarchical_estimate(&obs, 4);
    let mut gossip = GossipNetwork::new(obs.clone());
    let mut grng = seeds.rng("gossip");
    gossip.run(24, &mut grng);
    let g = gossip.outcome();

    let mut table = Table::new(
        "collective estimation: 64 nodes, one global quantity",
        &["architecture", "node error", "messages", "hot-spot load"],
    );
    for (name, out) in [
        ("centralised", &central),
        ("hierarchy(b=4)", &hier),
        ("gossip(24 rounds)", &g),
    ] {
        table.row_owned(vec![
            name.to_string(),
            format!("{:.4}", out.mean_abs_error(sample_mean)),
            out.messages.to_string(),
            out.max_node_load.to_string(),
        ]);
    }
    println!("{table}");

    // Ongoing change (paper Section II): a node re-observes a changed
    // local condition; the collective re-converges without any
    // coordinator noticing or helping.
    println!("mid-gossip disturbance: node 13 re-observes 90.0 (world changed locally)");
    gossip.reobserve(Reobservation {
        node: 13,
        value: 90.0,
        at: Tick(0),
    });
    let new_truth = (sample_mean * 64.0 - obs[13] + 90.0) / 64.0;
    for rounds in [2u32, 6, 12, 24] {
        let mut copy = gossip.clone();
        copy.run(rounds, &mut grng);
        println!(
            "  after {rounds:>2} more rounds: spread {}  worst-node error {}",
            num(copy.spread()),
            num(copy.outcome().max_abs_error(new_truth)),
        );
    }
    println!(
        "\nNo node ever held the global picture, yet every node ends up with it —\n\
         the paper's 'self-awareness as a property of collective systems'."
    );
}
