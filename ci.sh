#!/usr/bin/env bash
# Tier-1 gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> ci.sh: all green"
