#!/usr/bin/env bash
# Tier-1 gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

# Pin property-test case counts so the gate's coverage is the same on
# every machine (the vendored proptest reads PROPTEST_CASES).
export PROPTEST_CASES="${PROPTEST_CASES:-64}"

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

# The bench crate drives every substrate through the parallel
# replication engine; its parity and panic-isolation guarantees must
# hold at any worker count, so run its tests single-threaded and at a
# fixed multi-thread count too (the workspace run above used the
# machine default).
echo "==> cargo test -q --offline -p sas-bench -p simkernel (SAS_THREADS=1)"
SAS_THREADS=1 cargo test -q --offline -p sas-bench -p simkernel

echo "==> cargo test -q --offline -p sas-bench -p simkernel (SAS_THREADS=4)"
SAS_THREADS=4 cargo test -q --offline -p sas-bench -p simkernel

# F8 smoke: drive the lossy-comms sweep end-to-end at reduced length
# so a channel / retry-protocol regression surfaces here without the
# cost of the full-length bench.
echo "==> cargo bench -p sas-bench --bench f8_comms_loss (F8_STEPS=600)"
F8_STEPS=600 cargo bench --offline -p sas-bench --bench f8_comms_loss

# F9 smoke: the composed smart-city cascade end-to-end at reduced
# length, observability on, and schema-validate its emitted run trace
# — the composition layer's cross-substrate wiring and the F9 trace
# are both gated here.
echo "==> SAS_OBS=1 cargo bench -p sas-bench --bench f9_smart_city (F9_STEPS=300)"
rm -rf target/obs
SAS_OBS=1 F9_STEPS=300 cargo bench --offline -p sas-bench --bench f9_smart_city

echo "==> cargo run -p sas-bench --bin obs_validate (F9 trace)"
cargo run --offline -p sas-bench --bin obs_validate
rm -rf target/obs

# F10 smoke: counterfactual replay end-to-end at reduced length. The
# bench binary exits non-zero if the intervention-regression gate
# fails (an intervention class with negative measured benefit on its
# canonical campaign), and the emitted trace — including the typed
# `counterfactual` records — is schema-validated.
echo "==> SAS_OBS=1 cargo bench -p sas-bench --bench f10_counterfactual (F10_STEPS=600)"
rm -rf target/obs
SAS_OBS=1 F10_STEPS=600 cargo bench --offline -p sas-bench --bench f10_counterfactual

echo "==> cargo run -p sas-bench --bin obs_validate (F10 trace)"
cargo run --offline -p sas-bench --bin obs_validate
rm -rf target/obs

# F11 smoke: the wall-clock live-traffic server end-to-end — seeded
# chaos replayed against an ephemeral-port TCP server, governed by the
# supervised autoscaler. The bench binary asserts the robustness gates
# (clean shutdown, zero leaked threads, a shed→recover cycle, the
# poisoned arrival model noticed); F11_SMOKE=1 skips only the
# statistical CI-separation gates, which need full-length runs. The
# emitted trace (including live:* transitions) is schema-validated.
echo "==> SAS_OBS=1 F11_SMOKE=1 cargo bench -p sas-bench --bench f11_live_traffic (F11_TICKS=250, F11_REPS=1)"
rm -rf target/obs
SAS_OBS=1 F11_SMOKE=1 F11_TICKS=250 F11_REPS=1 cargo bench --offline -p sas-bench --bench f11_live_traffic

echo "==> cargo run -p sas-bench --bin obs_validate (F11 trace)"
cargo run --offline -p sas-bench --bin obs_validate
rm -rf target/obs

# F12 smoke: the discrete-event substrates end-to-end at reduced
# scale. The bench binary exits non-zero if any non-timing gate fails
# (dense-vs-sparse bit-identity, seq-vs-parallel bit-identity);
# F12_SMOKE=1 skips only the full-scale floors and the wall-clock
# speedup gate, which need full-scale runs. The emitted trace is
# schema-validated.
echo "==> SAS_OBS=1 F12_SMOKE=1 cargo bench -p sas-bench --bench f12_des_scale"
rm -rf target/obs
SAS_OBS=1 F12_SMOKE=1 cargo bench --offline -p sas-bench --bench f12_des_scale

echo "==> cargo run -p sas-bench --bin obs_validate (F12 trace)"
cargo run --offline -p sas-bench --bin obs_validate
rm -rf target/obs

# Observability smoke: one real experiment under SAS_OBS=1 must emit
# a parseable JSONL run trace with the expected schema (provenance,
# arm aggregates + phase profile, per-replicate records). target/obs
# is cleaned on both sides so stale artifacts can't mask a regression.
echo "==> SAS_OBS=1 cargo bench -p sas-bench --bench f5_camnet_outage (F5_STEPS=900, F5_REPS=2)"
rm -rf target/obs
SAS_OBS=1 F5_STEPS=900 F5_REPS=2 cargo bench --offline -p sas-bench --bench f5_camnet_outage

echo "==> cargo run -p sas-bench --bin obs_validate"
cargo run --offline -p sas-bench --bin obs_validate
rm -rf target/obs

# Perf-trajectory smoke: regenerate the macro-bench document at
# reduced steps/reps and schema-check it, then schema-check EVERY
# committed BENCH_<n>.json and print the cross-PR wall-clock delta
# table. This gates on SCHEMA DRIFT only — a renamed arm, missing
# field, malformed histogram, or a deleted historical document fails
# here; machine-local timing differences never do.
echo "==> cargo run -p sas-bench --bin perfbench -- --smoke"
PERF_SMOKE_OUT="$(mktemp -t perfbench_smoke.XXXXXX.json)"
trap 'rm -f "$PERF_SMOKE_OUT"' EXIT
cargo run --offline --release -p sas-bench --bin perfbench -- --smoke --out "$PERF_SMOKE_OUT"
cargo run --offline --release -p sas-bench --bin perfbench -- --validate "$PERF_SMOKE_OUT"
echo "==> perfbench --validate-all (committed trajectory)"
cargo run --offline --release -p sas-bench --bin perfbench -- --validate-all

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

# No panic paths in shipped library code: every first-party lib carries
# #![warn(clippy::unwrap_used, clippy::panic)], promoted to errors here
# (tests are exempted via clippy.toml allow-*-in-tests).
FIRST_PARTY="-p simkernel -p selfaware -p workloads -p camnet -p cloudsim -p multicore -p cpn -p compose -p liveserve -p sas-bench"
echo "==> cargo clippy --offline \$FIRST_PARTY --lib -- -D warnings"
# shellcheck disable=SC2086
cargo clippy --offline $FIRST_PARTY --lib -- -D warnings

echo "==> ci.sh: all green"
