#!/usr/bin/env bash
# Tier-1 gate: build, test, format, lint. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

# No panic paths in shipped library code: every first-party lib carries
# #![warn(clippy::unwrap_used, clippy::panic)], promoted to errors here
# (tests are exempted via clippy.toml allow-*-in-tests).
FIRST_PARTY="-p simkernel -p selfaware -p workloads -p camnet -p cloudsim -p multicore -p cpn -p sas-bench"
echo "==> cargo clippy --offline \$FIRST_PARTY --lib -- -D warnings"
# shellcheck disable=SC2086
cargo clippy --offline $FIRST_PARTY --lib -- -D warnings

echo "==> ci.sh: all green"
